// Transmitter (§3.5.1).
//
// Runs on the monitor machine, reading the three status databases the
// monitors maintain and shipping them to the receiver on the wizard machine
// as binary frames over TCP. Two modes (§3.5.1):
//  * centralized — actively pushes a snapshot every interval; status on the
//    wizard machine is always fresh, right for a small tightly-coupled
//    cluster;
//  * distributed — listens passively and answers kUpdateRequest pulls, so
//    sparse wide-area deployments pay network cost only when a user request
//    actually arrives.
//
// ISSUE 5: centralized pushes are delta-based when the store supports it.
// Each push opens with a kDeltaOffer handshake; the receiver answers with
// the (epoch, version) it last committed for this transmitter, and the
// transmitter ships only records written after that version plus tombstones
// for deletions — or a full snapshot when the receiver is fresh, behind an
// epoch change, or past the tombstone log's horizon. A receiver that never
// answers the offer (pre-delta build) is remembered as legacy and served
// byte-compatible full snapshots.
//
// ISSUE 8: centralized pushes fan out to a *replica set* of receivers —
// every wizard replica's receiver is offered the same delta protocol, each
// behind its own circuit breaker and its own legacy/ack bookkeeping, so one
// dead replica costs a breaker cooldown instead of stalling the others. The
// `transmitter_replicas_healthy` gauge tracks how many replicas the last
// push round reached.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "ipc/status_store.h"
#include "net/tcp_listener.h"
#include "obs/metrics.h"
#include "transport/record_codec.h"
#include "util/clock.h"
#include "util/retry.h"
#include "util/rng.h"

namespace smartsock::transport {

enum class TransferMode { kCentralized, kDistributed };

struct TransmitterConfig {
  TransferMode mode = TransferMode::kCentralized;
  net::Endpoint receiver;                           // centralized: push target
  /// Replica set (ISSUE 8): when non-empty, centralized pushes fan out to
  /// every endpoint here and `receiver` is ignored. Empty = single-receiver
  /// behaviour, unchanged.
  std::vector<net::Endpoint> receivers;
  net::Endpoint bind = net::Endpoint::loopback(0);  // distributed: listen here
  util::Duration interval = std::chrono::seconds(2);
  util::Duration io_timeout = std::chrono::seconds(2);

  /// Centralized push loop: a failed push retries through this policy
  /// within the cycle (max_attempts = 1 disables retrying), and a receiver
  /// that keeps failing trips the breaker, which then pays one probe per
  /// cooldown instead of a retry burst per interval.
  util::RetryPolicy push_retry{};
  util::CircuitBreakerConfig breaker{};
  /// Seed for the retry jitter (deterministic in tests).
  std::uint64_t retry_seed = 0x7a4351173eull;

  /// Incremental replication: offer deltas to the receiver (falls back to
  /// full snapshots automatically). Off = always push plain full snapshots,
  /// exactly the pre-ISSUE-5 wire.
  bool delta_enabled = true;
  /// Stable identity sent in the delta handshake; 0 mints a random one at
  /// construction. Two transmitters feeding one receiver must differ.
  std::uint64_t source_id = 0;
  /// After a peer is marked legacy, retry the delta handshake once every
  /// this many pushes so a receiver upgrade is eventually picked up.
  int legacy_reprobe_pushes = 64;
};

class Transmitter {
 public:
  Transmitter(TransmitterConfig config, const ipc::StatusStore& store);
  ~Transmitter();

  Transmitter(const Transmitter&) = delete;
  Transmitter& operator=(const Transmitter&) = delete;

  /// Centralized: one push round to every configured receiver, bypassing
  /// the breaker gates (a forced push is an explicit probe). Returns true
  /// when at least one replica took the push — the single-receiver contract
  /// unchanged, and the cluster analogue of "the status data got through".
  bool transmit_once();

  /// Distributed: the endpoint wizards pull from (resolved after bind).
  net::Endpoint endpoint() const { return endpoint_; }

  bool start();
  void stop();

  std::uint64_t snapshots_sent() const {
    return snapshots_sent_.load(std::memory_order_relaxed);
  }
  /// Pushes that shipped only changed records (incl. no-change heartbeats).
  std::uint64_t delta_pushes() const {
    return delta_pushes_.load(std::memory_order_relaxed);
  }
  /// Pushes that shipped complete databases (fresh/legacy receiver, epoch
  /// change, tombstone-log gap, or delta disabled).
  std::uint64_t full_pushes() const {
    return full_pushes_.load(std::memory_order_relaxed);
  }
  /// Whether the first replica's peer is currently believed to predate the
  /// delta protocol (single-receiver compatibility accessor).
  bool peer_legacy() const { return replicas_[0]->legacy.load(std::memory_order_relaxed); }
  bool peer_legacy(std::size_t index) const {
    return replicas_[index]->legacy.load(std::memory_order_relaxed);
  }
  /// Total payload bytes shipped by pushes/pulls (mirrors the
  /// `transmitter_bytes_sent_total` registry counter per instance).
  std::uint64_t bytes_sent() const {
    return bytes_sent_.load(std::memory_order_relaxed);
  }

  /// The first replica's push-path circuit breaker (single-receiver
  /// compatibility accessor). transmit_once() bypasses the breaker gates —
  /// a forced push is an explicit probe — but records outcomes, so manual
  /// pushes participate in opening/closing them.
  const util::CircuitBreaker& breaker() const { return replicas_[0]->breaker; }
  const util::CircuitBreaker& breaker(std::size_t index) const {
    return replicas_[index]->breaker;
  }

  /// Replica-set introspection (ISSUE 8).
  std::size_t replica_count() const { return replicas_.size(); }
  const net::Endpoint& replica_endpoint(std::size_t index) const {
    return replicas_[index]->endpoint;
  }
  /// Replicas whose most recent push succeeded (optimistically all of them
  /// before the first round). Mirrors the `transmitter_replicas_healthy`
  /// gauge.
  std::size_t replicas_healthy() const;

 private:
  enum class Negotiated { kOk, kIoError, kNoAccept };

  /// Per-receiver replication state: each wizard replica's receiver keeps
  /// its own breaker, legacy flag, reprobe countdown, and last-acked
  /// version. Mutable fields are guarded by push_mu_; `legacy` and
  /// `healthy` are mirrored in atomics for the lock-free accessors.
  struct ReplicaLink {
    ReplicaLink(const net::Endpoint& target, const util::CircuitBreakerConfig& breaker_config)
        : endpoint(target), breaker(breaker_config) {}
    net::Endpoint endpoint;
    util::CircuitBreaker breaker;
    std::atomic<bool> legacy{false};
    std::atomic<bool> healthy{true};
    int pushes_since_reprobe = 0;
    DeltaState last_acked{};
    /// Trips already exported to the registry counter (monotonic CAS-max,
    /// so the push loop and manual transmit_once() never double-count).
    std::atomic<std::uint64_t> breaker_trips_seen{0};
  };

  void run_push_loop();
  void run_serve_loop();
  /// One centralized push to one replica: handshake + delta when possible,
  /// full-snapshot fallback otherwise. Caller holds push_mu_.
  bool push_cycle(ReplicaLink& link);
  /// Delta handshake + negotiated transfer on a connected socket.
  /// kNoAccept = the peer never answered the offer (legacy receiver).
  Negotiated push_negotiated(net::TcpSocket& socket, const ipc::Snapshot& snap,
                             ReplicaLink& link);
  /// Sends a kTraceContext frame carrying `trace_id` (minted from rng_ when
  /// empty — the pull path passes the wizard's id through) and then the
  /// three full database frames. Byte-compatible with pre-delta receivers.
  bool send_snapshot(net::TcpSocket& socket, std::string trace_id = {});
  void record_push_outcome(ReplicaLink& link, bool ok);
  void publish_replica_gauges();
  void account_push(bool delta, std::size_t bytes);

  TransmitterConfig config_;
  const ipc::StatusStore* store_;
  net::TcpListener listener_;  // distributed mode only
  net::Endpoint endpoint_;
  // Registry-owned; shared by every snapshot connection instead of
  // registering a fresh counter per push.
  util::TrafficCounter* traffic_ = nullptr;
  obs::Counter* delta_pushes_counter_ = nullptr;
  obs::Counter* full_pushes_counter_ = nullptr;
  obs::Counter* bytes_sent_counter_ = nullptr;

  util::Rng rng_;
  std::uint64_t source_id_ = 0;

  std::mutex push_mu_;
  // ReplicaLink owns a breaker (which owns a mutex), so links live behind
  // unique_ptr. Never empty: a default config yields one link to `receiver`.
  std::vector<std::unique_ptr<ReplicaLink>> replicas_;

  std::thread thread_;
  std::atomic<bool> stop_requested_{false};
  std::atomic<std::uint64_t> snapshots_sent_{0};
  std::atomic<std::uint64_t> delta_pushes_{0};
  std::atomic<std::uint64_t> full_pushes_{0};
  std::atomic<std::uint64_t> bytes_sent_{0};
};

}  // namespace smartsock::transport
