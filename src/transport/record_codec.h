// Binary framing for transmitter→receiver transfers (§3.5.1).
//
// Wire format per frame: [type u32][size u32][data], with type and size
// first so the receiver can size its buffer before the data arrives —
// exactly the thesis's description. Record payloads are raw memcpy'd arrays
// of the POD record types; like the thesis, this assumes the transmitter and
// receiver machines share architecture (endianness and type widths). The
// framing integers travel in network byte order so a mismatch is at least
// detected (the type check fails loudly instead of reading garbage sizes).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ipc/status_record.h"
#include "net/tcp_socket.h"

namespace smartsock::transport {

enum class FrameType : std::uint32_t {
  kSysDb = 1,
  kNetDb = 2,
  kSecDb = 3,
  kUpdateRequest = 4,   // distributed mode: wizard asks for fresh reports
  kTraceContext = 5,    // flight recorder: trace id for the following frames
};

struct Frame {
  FrameType type = FrameType::kSysDb;
  std::string payload;
};

/// Why read_frame returned nullopt. Clean EOF (the peer finished its
/// snapshot and closed) is the only benign outcome; everything else means
/// the stream is unusable from this point on and the connection should be
/// aborted, not quietly treated as end-of-snapshot.
enum class FrameReadError {
  kNone,       // a frame was returned
  kEof,        // orderly close before any header byte
  kTruncated,  // connection ended, timed out or failed mid-frame
  kBadType,    // header type outside the known range (desynced stream)
  kOversized,  // payload length above the sanity cap
};

/// Human-readable name for log lines.
const char* to_string(FrameReadError error);

/// Serializes one frame (header + payload).
std::string encode_frame(FrameType type, std::string_view payload);

/// Reads one complete frame from a connected socket. nullopt on EOF before a
/// header, malformed header, or oversized payload (sanity cap 16 MB); when
/// `error` is non-null it reports which of those happened.
std::optional<Frame> read_frame(net::TcpSocket& socket,
                                FrameReadError* error = nullptr);

/// Record array <-> payload bytes.
template <typename Record>
std::string encode_records(const std::vector<Record>& records) {
  static_assert(std::is_trivially_copyable_v<Record>);
  std::string out(records.size() * sizeof(Record), '\0');
  if (!records.empty()) {
    std::memcpy(out.data(), records.data(), out.size());
  }
  return out;
}

template <typename Record>
std::optional<std::vector<Record>> decode_records(std::string_view payload) {
  static_assert(std::is_trivially_copyable_v<Record>);
  if (payload.size() % sizeof(Record) != 0) return std::nullopt;
  std::vector<Record> out(payload.size() / sizeof(Record));
  if (!out.empty()) {
    std::memcpy(out.data(), payload.data(), payload.size());
  }
  return out;
}

}  // namespace smartsock::transport
