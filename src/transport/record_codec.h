// Binary framing for transmitter→receiver transfers (§3.5.1).
//
// Wire format per frame: [type u32][size u32][data], with type and size
// first so the receiver can size its buffer before the data arrives —
// exactly the thesis's description. Record payloads are raw memcpy'd arrays
// of the POD record types; like the thesis, this assumes the transmitter and
// receiver machines share architecture (endianness and type widths). The
// framing integers travel in network byte order so a mismatch is at least
// detected (the type check fails loudly instead of reading garbage sizes).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ipc/status_record.h"
#include "net/tcp_socket.h"

namespace smartsock::transport {

enum class FrameType : std::uint32_t {
  kSysDb = 1,
  kNetDb = 2,
  kSecDb = 3,
  kUpdateRequest = 4,   // distributed mode: wizard asks for fresh reports
  kTraceContext = 5,    // flight recorder: trace id for the following frames

  // Incremental replication (ISSUE 5). A delta-capable transmitter opens a
  // push with kDeltaOffer and waits for the receiver's kDeltaAccept carrying
  // the replica state it holds for that source; the transmitter then ships
  // either changed records + tombstones or full databases, and seals the
  // transfer with kDeltaCommit so the receiver advances its acked state
  // atomically. A pre-ISSUE-5 receiver aborts on the unknown offer frame —
  // the transmitter detects the dead connection and falls back to the plain
  // byte-compatible full-snapshot stream above.
  kDeltaOffer = 6,      // transmitter → receiver: source_id, epoch, version
  kDeltaAccept = 7,     // receiver → transmitter: acked epoch, version
  kSysDelta = 8,        // changed SysRecords (upserts)
  kNetDelta = 9,        // changed NetRecords
  kSecDelta = 10,       // changed SecRecords
  kSysTombstone = 11,   // deleted sys keys (ipc::SysKey array)
  kNetTombstone = 12,   // deleted net keys (ipc::NetKey array)
  kSecTombstone = 13,   // deleted sec keys (ipc::SecKey array)
  kDeltaCommit = 14,    // end of transfer: epoch, version now fully applied
};

struct Frame {
  FrameType type = FrameType::kSysDb;
  std::string payload;
};

/// Sanity cap on a single frame's payload. Streams announcing more are
/// treated as desynced (kOversized). Receivers buffering whole frames (the
/// reactor ingest path) must allow at least kMaxFramePayload + 8 header
/// bytes of input, or a legal frame can never finish parsing.
inline constexpr std::size_t kMaxFramePayload = 16 * 1024 * 1024;

/// Why read_frame returned nullopt. Clean EOF (the peer finished its
/// snapshot and closed) is the only benign outcome; everything else means
/// the stream is unusable from this point on and the connection should be
/// aborted, not quietly treated as end-of-snapshot.
enum class FrameReadError {
  kNone,       // a frame was returned
  kEof,        // orderly close before any header byte
  kTruncated,  // connection ended, timed out or failed mid-frame
  kBadType,    // header type outside the known range (desynced stream)
  kOversized,  // payload length above the sanity cap
};

/// Human-readable name for log lines.
const char* to_string(FrameReadError error);

/// Serializes one frame (header + payload).
std::string encode_frame(FrameType type, std::string_view payload);

/// Reads one complete frame from a connected socket. nullopt on EOF before a
/// header, malformed header, or oversized payload (sanity cap 16 MB); when
/// `error` is non-null it reports which of those happened.
std::optional<Frame> read_frame(net::TcpSocket& socket,
                                FrameReadError* error = nullptr);

/// Incremental variant for reactor-buffered streams (ISSUE 6): parses one
/// frame off the head of `buffer` without blocking.
enum class FrameParseStatus {
  kFrame,     // *frame filled; drop *consumed bytes from the buffer
  kNeedMore,  // incomplete header/payload — wait for more bytes
  kBad,       // damaged stream (error = kBadType/kOversized); abort
};
FrameParseStatus try_parse_frame(std::string_view buffer, Frame* frame,
                                 std::size_t* consumed,
                                 FrameReadError* error = nullptr);

/// Handshake payloads travel as network-byte-order u64 fields, so they stay
/// architecture-independent even though record payloads are not.
struct DeltaOffer {
  std::uint64_t source_id = 0;  // stable identity of the pushing transmitter
  std::uint64_t epoch = 0;      // store epoch at the offered snapshot
  std::uint64_t version = 0;    // store version at the offered snapshot
};

struct DeltaState {
  std::uint64_t epoch = 0;
  std::uint64_t version = 0;
};

std::string encode_delta_offer(const DeltaOffer& offer);
std::optional<DeltaOffer> decode_delta_offer(std::string_view payload);
std::string encode_delta_state(const DeltaState& state);
std::optional<DeltaState> decode_delta_state(std::string_view payload);

/// Record array <-> payload bytes.
template <typename Record>
std::string encode_records(const std::vector<Record>& records) {
  static_assert(std::is_trivially_copyable_v<Record>);
  std::string out(records.size() * sizeof(Record), '\0');
  if (!records.empty()) {
    std::memcpy(out.data(), records.data(), out.size());
  }
  return out;
}

template <typename Record>
std::optional<std::vector<Record>> decode_records(std::string_view payload) {
  static_assert(std::is_trivially_copyable_v<Record>);
  if (payload.size() % sizeof(Record) != 0) return std::nullopt;
  std::vector<Record> out(payload.size() / sizeof(Record));
  if (!out.empty()) {
    std::memcpy(out.data(), payload.data(), payload.size());
  }
  return out;
}

}  // namespace smartsock::transport
