#include "transport/transmitter.h"

#include "obs/metrics.h"
#include "transport/record_codec.h"
#include "util/counters.h"
#include "util/logging.h"

namespace smartsock::transport {

Transmitter::Transmitter(TransmitterConfig config, const ipc::StatusStore& store)
    : config_(std::move(config)),
      store_(&store),
      traffic_(obs::MetricsRegistry::instance().traffic("transmitter")) {
  if (config_.mode == TransferMode::kDistributed) {
    if (auto listener = net::TcpListener::listen(config_.bind)) {
      listener_ = std::move(*listener);
      endpoint_ = listener_.local_endpoint();
    }
  }
}

Transmitter::~Transmitter() { stop(); }

bool Transmitter::send_snapshot(net::TcpSocket& socket) {
  socket.set_traffic_counter(traffic_);
  socket.set_send_timeout(config_.io_timeout);
  std::string blob;
  blob += encode_frame(FrameType::kSysDb, encode_records(store_->sys_records()));
  blob += encode_frame(FrameType::kNetDb, encode_records(store_->net_records()));
  blob += encode_frame(FrameType::kSecDb, encode_records(store_->sec_records()));
  if (!socket.send_all(blob).ok()) return false;
  snapshots_sent_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool Transmitter::transmit_once() {
  auto socket = net::TcpSocket::connect(config_.receiver, config_.io_timeout);
  if (!socket) {
    SMARTSOCK_LOG(kWarn, "transmitter")
        << "cannot reach receiver " << config_.receiver.to_string();
    return false;
  }
  return send_snapshot(*socket);
}

bool Transmitter::start() {
  if (thread_.joinable()) return false;
  if (config_.mode == TransferMode::kDistributed && !listener_.valid()) return false;
  stop_requested_.store(false, std::memory_order_release);
  if (config_.mode == TransferMode::kCentralized) {
    thread_ = std::thread([this] { run_push_loop(); });
  } else {
    thread_ = std::thread([this] { run_serve_loop(); });
  }
  return true;
}

void Transmitter::stop() {
  stop_requested_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
}

void Transmitter::run_push_loop() {
  util::Clock& clock = util::SteadyClock::instance();
  while (!stop_requested_.load(std::memory_order_acquire)) {
    transmit_once();
    util::Duration remaining = config_.interval;
    const util::Duration slice = std::chrono::milliseconds(20);
    while (remaining > util::Duration::zero() &&
           !stop_requested_.load(std::memory_order_acquire)) {
      util::Duration step = std::min(remaining, slice);
      clock.sleep_for(step);
      remaining -= step;
    }
  }
}

void Transmitter::run_serve_loop() {
  while (!stop_requested_.load(std::memory_order_acquire)) {
    auto client = listener_.accept(std::chrono::milliseconds(50));
    if (!client) continue;
    client->set_receive_timeout(config_.io_timeout);
    auto frame = read_frame(*client);
    if (!frame || frame->type != FrameType::kUpdateRequest) continue;
    send_snapshot(*client);
  }
}

}  // namespace smartsock::transport
