#include "transport/transmitter.h"

#include "obs/span.h"
#include "obs/trace.h"
#include "util/counters.h"
#include "util/logging.h"

namespace smartsock::transport {

namespace {

/// Changed records / deleted keys since `base`, framed tombstones-first so a
/// delete-then-recreate sequence replays in version order on the receiver.
template <typename Record, typename Key>
void append_db_delta(std::string& blob, FrameType record_type, FrameType tombstone_type,
                     const std::vector<Record>& records,
                     const std::vector<std::uint64_t>& versions,
                     const std::vector<std::pair<std::uint64_t, Key>>& tombstones,
                     std::uint64_t base, std::size_t* changed_out) {
  std::vector<Key> dead;
  for (const auto& [version, key] : tombstones) {
    if (version > base) dead.push_back(key);
  }
  if (!dead.empty()) {
    blob += encode_frame(tombstone_type, encode_records(dead));
  }
  std::vector<Record> changed;
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (versions[i] > base) changed.push_back(records[i]);
  }
  if (!changed.empty()) {
    blob += encode_frame(record_type, encode_records(changed));
  }
  if (changed_out) *changed_out += changed.size() + dead.size();
}

}  // namespace

Transmitter::Transmitter(TransmitterConfig config, const ipc::StatusStore& store)
    : config_(std::move(config)),
      store_(&store),
      traffic_(obs::MetricsRegistry::instance().traffic("transmitter")),
      rng_(config_.retry_seed) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::instance();
  delta_pushes_counter_ = registry.counter("transmitter_delta_pushes_total");
  full_pushes_counter_ = registry.counter("transmitter_full_pushes_total");
  bytes_sent_counter_ = registry.counter("transmitter_bytes_sent_total");
  source_id_ = config_.source_id != 0 ? config_.source_id : rng_.engine()();
  // Effective replica set: the configured list, else the single receiver —
  // one code path serves both shapes (ISSUE 8).
  std::vector<net::Endpoint> targets = config_.receivers;
  if (targets.empty()) targets.push_back(config_.receiver);
  replicas_.reserve(targets.size());
  for (const net::Endpoint& target : targets) {
    replicas_.push_back(std::make_unique<ReplicaLink>(target, config_.breaker));
  }
  publish_replica_gauges();
  if (config_.mode == TransferMode::kDistributed) {
    if (auto listener = net::TcpListener::listen(config_.bind)) {
      listener_ = std::move(*listener);
      endpoint_ = listener_.local_endpoint();
    }
  }
}

Transmitter::~Transmitter() { stop(); }

void Transmitter::account_push(bool delta, std::size_t bytes) {
  if (delta) {
    delta_pushes_.fetch_add(1, std::memory_order_relaxed);
    delta_pushes_counter_->inc();
  } else {
    full_pushes_.fetch_add(1, std::memory_order_relaxed);
    full_pushes_counter_->inc();
  }
  bytes_sent_counter_->inc(bytes);
  bytes_sent_.fetch_add(bytes, std::memory_order_relaxed);
  snapshots_sent_.fetch_add(1, std::memory_order_relaxed);
}

bool Transmitter::send_snapshot(net::TcpSocket& socket, std::string trace_id) {
  socket.set_traffic_counter(traffic_);
  socket.set_send_timeout(config_.io_timeout);
  if (trace_id.empty()) trace_id = obs::mint_trace_id(rng_);
  obs::Span span("transmitter", "push", trace_id);
  // One snapshot pointer serves both the encoding and the span tags — no
  // second store copy for observability.
  ipc::SnapshotPtr snap = store_->snapshot();
  std::string blob;
  // Trace context travels first so the receiver can stamp every database
  // frame of this snapshot with the same id (flight-recorder propagation).
  blob += encode_frame(FrameType::kTraceContext, trace_id);
  blob += encode_frame(FrameType::kSysDb, encode_records(snap->sys));
  blob += encode_frame(FrameType::kNetDb, encode_records(snap->net));
  blob += encode_frame(FrameType::kSecDb, encode_records(snap->sec));
  span.tag("bytes", blob.size()).tag("sys_records", snap->sys.size());
  span.tag("mode", "full");
  obs::TraceEvent(util::LogLevel::kDebug, "transmitter", "snapshot_send", trace_id)
      .kv("bytes", blob.size())
      .kv("peer", socket.peer_endpoint().to_string());
  if (!socket.send_all(blob).ok()) {
    span.tag("ok", false);
    return false;
  }
  span.tag("ok", true);
  account_push(/*delta=*/false, blob.size());
  return true;
}

Transmitter::Negotiated Transmitter::push_negotiated(net::TcpSocket& socket,
                                                     const ipc::Snapshot& snap,
                                                     ReplicaLink& link) {
  socket.set_traffic_counter(traffic_);
  socket.set_send_timeout(config_.io_timeout);
  socket.set_receive_timeout(config_.io_timeout);

  DeltaOffer offer{source_id_, snap.epoch, snap.version};
  if (!socket.send_all(encode_frame(FrameType::kDeltaOffer, encode_delta_offer(offer)))
           .ok()) {
    // The offer is a handful of bytes; a failed send means the peer reset us
    // immediately — possibly a legacy receiver aborting on the unknown type.
    return Negotiated::kNoAccept;
  }
  FrameReadError why = FrameReadError::kNone;
  auto reply = read_frame(socket, &why);
  if (!reply || reply->type != FrameType::kDeltaAccept) {
    // A legacy receiver closes the connection on the unknown offer frame;
    // either way the peer cannot speak the delta protocol right now.
    return Negotiated::kNoAccept;
  }
  auto acked = decode_delta_state(reply->payload);
  if (!acked) return Negotiated::kNoAccept;
  link.last_acked = *acked;

  bool delta = acked->epoch == snap.epoch && snap.can_delta_from(acked->version);
  if (delta) {
    // Density cutover: when most of a large database changed since the ack,
    // the delta encoding ships the same bytes as the full frames but pays a
    // per-record copy for each — take the straight full-vector path instead.
    // The commit frame still advances the peer's replica state either way.
    // Small databases always delta: the copies are trivial there, and a
    // one-host deployment rewriting its whole sysdb every probe interval
    // must not read as a permanent full-snapshot fallback.
    constexpr std::size_t kCutoverMinRecords = 64;
    auto dirty = [&](const std::vector<std::uint64_t>& versions) {
      std::size_t n = 0;
      for (std::uint64_t v : versions) {
        if (v > acked->version) ++n;
      }
      return n;
    };
    std::size_t total = snap.sys.size() + snap.net.size() + snap.sec.size();
    if (total >= kCutoverMinRecords) {
      std::size_t changed_estimate =
          dirty(snap.sys_versions) + dirty(snap.net_versions) + dirty(snap.sec_versions);
      if (changed_estimate * 2 > total) delta = false;
    }
  }
  std::string trace_id = obs::mint_trace_id(rng_);
  obs::Span span("transmitter", "push", trace_id);
  std::string blob = encode_frame(FrameType::kTraceContext, trace_id);
  std::size_t changed = 0;
  if (delta) {
    append_db_delta(blob, FrameType::kSysDelta, FrameType::kSysTombstone, snap.sys,
                    snap.sys_versions, snap.sys_tombstones, acked->version, &changed);
    append_db_delta(blob, FrameType::kNetDelta, FrameType::kNetTombstone, snap.net,
                    snap.net_versions, snap.net_tombstones, acked->version, &changed);
    append_db_delta(blob, FrameType::kSecDelta, FrameType::kSecTombstone, snap.sec,
                    snap.sec_versions, snap.sec_tombstones, acked->version, &changed);
  } else {
    blob += encode_frame(FrameType::kSysDb, encode_records(snap.sys));
    blob += encode_frame(FrameType::kNetDb, encode_records(snap.net));
    blob += encode_frame(FrameType::kSecDb, encode_records(snap.sec));
    changed = snap.sys.size() + snap.net.size() + snap.sec.size();
  }
  blob += encode_frame(FrameType::kDeltaCommit,
                       encode_delta_state(DeltaState{snap.epoch, snap.version}));
  span.tag("mode", delta ? "delta" : "full")
      .tag("bytes", blob.size())
      .tag("records", changed)
      .tag("sys_records", snap.sys.size());
  obs::TraceEvent(util::LogLevel::kDebug, "transmitter",
                  delta ? "delta_send" : "snapshot_send", trace_id)
      .kv("bytes", blob.size())
      .kv("records", changed)
      .kv("base_version", acked->version)
      .kv("peer", socket.peer_endpoint().to_string());
  if (!socket.send_all(blob).ok()) {
    span.tag("ok", false);
    return Negotiated::kIoError;
  }
  span.tag("ok", true);
  account_push(delta, blob.size());
  return Negotiated::kOk;
}

void Transmitter::record_push_outcome(ReplicaLink& link, bool ok) {
  if (ok) {
    link.breaker.record_success();
  } else {
    link.breaker.record_failure();
  }
  link.healthy.store(ok, std::memory_order_relaxed);
  obs::MetricsRegistry& registry = obs::MetricsRegistry::instance();
  // The unlabelled breaker-state gauge keeps tracking the first (primary)
  // replica so pre-cluster dashboards stay meaningful.
  if (&link == replicas_[0].get()) {
    registry.gauge("transmitter_breaker_state")
        ->set(static_cast<double>(static_cast<int>(link.breaker.state())));
  }
  std::uint64_t trips = link.breaker.trips();
  std::uint64_t seen = link.breaker_trips_seen.load(std::memory_order_relaxed);
  while (seen < trips && !link.breaker_trips_seen.compare_exchange_weak(
                             seen, trips, std::memory_order_relaxed)) {
  }
  if (seen < trips) {
    registry.counter("transmitter_breaker_trips_total")->inc(trips - seen);
    SMARTSOCK_LOG(kWarn, "transmitter")
        << "circuit breaker opened after " << link.breaker.consecutive_failures()
        << " consecutive push failures to " << link.endpoint.to_string();
  }
  publish_replica_gauges();
}

std::size_t Transmitter::replicas_healthy() const {
  std::size_t healthy = 0;
  for (const auto& link : replicas_) {
    if (link->healthy.load(std::memory_order_relaxed)) ++healthy;
  }
  return healthy;
}

void Transmitter::publish_replica_gauges() {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::instance();
  registry.gauge("transmitter_replicas_configured")
      ->set(static_cast<double>(replicas_.size()));
  registry.gauge("transmitter_replicas_healthy")
      ->set(static_cast<double>(replicas_healthy()));
}

bool Transmitter::push_cycle(ReplicaLink& link) {
  ipc::SnapshotPtr snap = store_->snapshot();
  bool try_delta = config_.delta_enabled && snap->delta_capable;
  if (try_delta && link.legacy.load(std::memory_order_relaxed)) {
    if (++link.pushes_since_reprobe >= config_.legacy_reprobe_pushes) {
      link.pushes_since_reprobe = 0;
      link.legacy.store(false, std::memory_order_relaxed);
    } else {
      try_delta = false;
    }
  }

  auto socket = net::TcpSocket::connect(link.endpoint, config_.io_timeout);
  if (!socket) {
    SMARTSOCK_LOG(kWarn, "transmitter")
        << "cannot reach receiver " << link.endpoint.to_string();
    return false;
  }
  if (try_delta) {
    Negotiated outcome = push_negotiated(*socket, *snap, link);
    if (outcome == Negotiated::kOk) return true;
    if (outcome == Negotiated::kIoError) return false;
    // No answer to the offer: assume a pre-delta receiver and retry this
    // cycle with the byte-compatible full-snapshot stream.
    link.legacy.store(true, std::memory_order_relaxed);
    link.pushes_since_reprobe = 0;
    SMARTSOCK_LOG(kInfo, "transmitter")
        << "receiver " << link.endpoint.to_string()
        << " did not answer delta offer — falling back to full snapshots";
    socket = net::TcpSocket::connect(link.endpoint, config_.io_timeout);
    if (!socket) return false;
  }
  return send_snapshot(*socket);
}

bool Transmitter::transmit_once() {
  std::lock_guard<std::mutex> lock(push_mu_);
  bool any = false;
  for (auto& link : replicas_) {
    bool ok = push_cycle(*link);
    record_push_outcome(*link, ok);
    any = any || ok;
  }
  return any;
}

bool Transmitter::start() {
  if (thread_.joinable()) return false;
  if (config_.mode == TransferMode::kDistributed && !listener_.valid()) return false;
  stop_requested_.store(false, std::memory_order_release);
  if (config_.mode == TransferMode::kCentralized) {
    thread_ = std::thread([this] { run_push_loop(); });
  } else {
    thread_ = std::thread([this] { run_serve_loop(); });
  }
  return true;
}

void Transmitter::stop() {
  stop_requested_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
}

void Transmitter::run_push_loop() {
  util::Clock& clock = util::SteadyClock::instance();
  obs::Counter* retries =
      obs::MetricsRegistry::instance().counter("transmitter_push_retries_total");
  while (!stop_requested_.load(std::memory_order_acquire)) {
    // Each replica's breaker gates its own push: while open, that replica
    // is skipped until the cooldown elapses, at which point allow() lets
    // one probe through (half-open). The others keep receiving pushes — a
    // dead replica never stalls the healthy ones.
    for (auto& link : replicas_) {
      if (stop_requested_.load(std::memory_order_acquire)) break;
      if (!link->breaker.allow()) continue;
      util::RetryState retry(config_.push_retry, rng_, clock);
      for (;;) {
        bool ok;
        {
          std::lock_guard<std::mutex> lock(push_mu_);
          ok = push_cycle(*link);
          record_push_outcome(*link, ok);
        }
        if (ok || stop_requested_.load(std::memory_order_acquire)) break;
        // A trip mid-cycle ends the retry loop early — the breaker has
        // decided this receiver is down; hammering on defeats its purpose.
        if (link->breaker.state() == util::CircuitBreaker::State::kOpen) break;
        if (!retry.backoff()) break;
        retries->inc();
      }
    }
    util::Duration remaining = config_.interval;
    const util::Duration slice = std::chrono::milliseconds(20);
    while (remaining > util::Duration::zero() &&
           !stop_requested_.load(std::memory_order_acquire)) {
      util::Duration step = std::min(remaining, slice);
      clock.sleep_for(step);
      remaining -= step;
    }
  }
}

void Transmitter::run_serve_loop() {
  while (!stop_requested_.load(std::memory_order_acquire)) {
    auto client = listener_.accept(std::chrono::milliseconds(50));
    if (!client) continue;
    client->set_receive_timeout(config_.io_timeout);
    auto frame = read_frame(*client);
    if (!frame || frame->type != FrameType::kUpdateRequest) continue;
    // The wizard's pull carries its trace id as the request payload; echo
    // it so both sides of the transfer land in the same trace. Pulls are
    // request/response with no standing replica state, so they stay full
    // snapshots.
    send_snapshot(*client, frame->payload);
  }
}

}  // namespace smartsock::transport
