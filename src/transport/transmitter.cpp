#include "transport/transmitter.h"

#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "transport/record_codec.h"
#include "util/counters.h"
#include "util/logging.h"

namespace smartsock::transport {

Transmitter::Transmitter(TransmitterConfig config, const ipc::StatusStore& store)
    : config_(std::move(config)),
      store_(&store),
      traffic_(obs::MetricsRegistry::instance().traffic("transmitter")),
      rng_(config_.retry_seed),
      breaker_(config_.breaker) {
  if (config_.mode == TransferMode::kDistributed) {
    if (auto listener = net::TcpListener::listen(config_.bind)) {
      listener_ = std::move(*listener);
      endpoint_ = listener_.local_endpoint();
    }
  }
}

Transmitter::~Transmitter() { stop(); }

bool Transmitter::send_snapshot(net::TcpSocket& socket, std::string trace_id) {
  socket.set_traffic_counter(traffic_);
  socket.set_send_timeout(config_.io_timeout);
  if (trace_id.empty()) trace_id = obs::mint_trace_id(rng_);
  obs::Span span("transmitter", "push", trace_id);
  std::string blob;
  // Trace context travels first so the receiver can stamp every database
  // frame of this snapshot with the same id (flight-recorder propagation).
  blob += encode_frame(FrameType::kTraceContext, trace_id);
  blob += encode_frame(FrameType::kSysDb, encode_records(store_->sys_records()));
  blob += encode_frame(FrameType::kNetDb, encode_records(store_->net_records()));
  blob += encode_frame(FrameType::kSecDb, encode_records(store_->sec_records()));
  span.tag("bytes", blob.size()).tag("sys_records", store_->sys_records().size());
  obs::TraceEvent(util::LogLevel::kDebug, "transmitter", "snapshot_send", trace_id)
      .kv("bytes", blob.size())
      .kv("peer", socket.peer_endpoint().to_string());
  if (!socket.send_all(blob).ok()) {
    span.tag("ok", false);
    return false;
  }
  span.tag("ok", true);
  snapshots_sent_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void Transmitter::record_push_outcome(bool ok) {
  if (ok) {
    breaker_.record_success();
  } else {
    breaker_.record_failure();
  }
  obs::MetricsRegistry& registry = obs::MetricsRegistry::instance();
  registry.gauge("transmitter_breaker_state")
      ->set(static_cast<double>(static_cast<int>(breaker_.state())));
  std::uint64_t trips = breaker_.trips();
  std::uint64_t seen = breaker_trips_seen_.load(std::memory_order_relaxed);
  while (seen < trips && !breaker_trips_seen_.compare_exchange_weak(
                             seen, trips, std::memory_order_relaxed)) {
  }
  if (seen < trips) {
    registry.counter("transmitter_breaker_trips_total")->inc(trips - seen);
    SMARTSOCK_LOG(kWarn, "transmitter")
        << "circuit breaker opened after " << breaker_.consecutive_failures()
        << " consecutive push failures to " << config_.receiver.to_string();
  }
}

bool Transmitter::transmit_once() {
  auto socket = net::TcpSocket::connect(config_.receiver, config_.io_timeout);
  bool ok = false;
  if (!socket) {
    SMARTSOCK_LOG(kWarn, "transmitter")
        << "cannot reach receiver " << config_.receiver.to_string();
  } else {
    ok = send_snapshot(*socket);
  }
  record_push_outcome(ok);
  return ok;
}

bool Transmitter::start() {
  if (thread_.joinable()) return false;
  if (config_.mode == TransferMode::kDistributed && !listener_.valid()) return false;
  stop_requested_.store(false, std::memory_order_release);
  if (config_.mode == TransferMode::kCentralized) {
    thread_ = std::thread([this] { run_push_loop(); });
  } else {
    thread_ = std::thread([this] { run_serve_loop(); });
  }
  return true;
}

void Transmitter::stop() {
  stop_requested_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
}

void Transmitter::run_push_loop() {
  util::Clock& clock = util::SteadyClock::instance();
  obs::Counter* retries =
      obs::MetricsRegistry::instance().counter("transmitter_push_retries_total");
  while (!stop_requested_.load(std::memory_order_acquire)) {
    // The breaker gates the whole cycle: while open, the push is skipped
    // entirely until the cooldown elapses, at which point allow() lets one
    // probe through (half-open).
    if (breaker_.allow()) {
      util::RetryState retry(config_.push_retry, rng_, clock);
      while (!transmit_once() &&
             !stop_requested_.load(std::memory_order_acquire)) {
        // A trip mid-cycle ends the retry loop early — the breaker has
        // decided the receiver is down; hammering on defeats its purpose.
        if (breaker_.state() == util::CircuitBreaker::State::kOpen) break;
        if (!retry.backoff()) break;
        retries->inc();
      }
    }
    util::Duration remaining = config_.interval;
    const util::Duration slice = std::chrono::milliseconds(20);
    while (remaining > util::Duration::zero() &&
           !stop_requested_.load(std::memory_order_acquire)) {
      util::Duration step = std::min(remaining, slice);
      clock.sleep_for(step);
      remaining -= step;
    }
  }
}

void Transmitter::run_serve_loop() {
  while (!stop_requested_.load(std::memory_order_acquire)) {
    auto client = listener_.accept(std::chrono::milliseconds(50));
    if (!client) continue;
    client->set_receive_timeout(config_.io_timeout);
    auto frame = read_frame(*client);
    if (!frame || frame->type != FrameType::kUpdateRequest) continue;
    // The wizard's pull carries its trace id as the request payload; echo
    // it so both sides of the transfer land in the same trace.
    send_snapshot(*client, frame->payload);
  }
}

}  // namespace smartsock::transport
