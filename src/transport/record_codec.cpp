#include "transport/record_codec.h"

#include <arpa/inet.h>

namespace smartsock::transport {

std::string encode_frame(FrameType type, std::string_view payload) {
  std::string out(8 + payload.size(), '\0');
  std::uint32_t type_be = htonl(static_cast<std::uint32_t>(type));
  std::uint32_t size_be = htonl(static_cast<std::uint32_t>(payload.size()));
  std::memcpy(out.data(), &type_be, 4);
  std::memcpy(out.data() + 4, &size_be, 4);
  std::memcpy(out.data() + 8, payload.data(), payload.size());
  return out;
}

namespace {

void put_u64_be(std::string& out, std::uint64_t value) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    out.push_back(static_cast<char>((value >> shift) & 0xff));
  }
}

std::uint64_t get_u64_be(const char* data) {
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value = (value << 8) | static_cast<std::uint8_t>(data[i]);
  }
  return value;
}

}  // namespace

std::string encode_delta_offer(const DeltaOffer& offer) {
  std::string out;
  out.reserve(24);
  put_u64_be(out, offer.source_id);
  put_u64_be(out, offer.epoch);
  put_u64_be(out, offer.version);
  return out;
}

std::optional<DeltaOffer> decode_delta_offer(std::string_view payload) {
  if (payload.size() != 24) return std::nullopt;
  DeltaOffer offer;
  offer.source_id = get_u64_be(payload.data());
  offer.epoch = get_u64_be(payload.data() + 8);
  offer.version = get_u64_be(payload.data() + 16);
  return offer;
}

std::string encode_delta_state(const DeltaState& state) {
  std::string out;
  out.reserve(16);
  put_u64_be(out, state.epoch);
  put_u64_be(out, state.version);
  return out;
}

std::optional<DeltaState> decode_delta_state(std::string_view payload) {
  if (payload.size() != 16) return std::nullopt;
  DeltaState state;
  state.epoch = get_u64_be(payload.data());
  state.version = get_u64_be(payload.data() + 8);
  return state;
}

const char* to_string(FrameReadError error) {
  switch (error) {
    case FrameReadError::kNone: return "none";
    case FrameReadError::kEof: return "eof";
    case FrameReadError::kTruncated: return "truncated";
    case FrameReadError::kBadType: return "bad_type";
    case FrameReadError::kOversized: return "oversized";
  }
  return "unknown";
}

std::optional<Frame> read_frame(net::TcpSocket& socket, FrameReadError* error) {
  FrameReadError scratch = FrameReadError::kNone;
  FrameReadError& why = error ? *error : scratch;
  why = FrameReadError::kNone;

  std::string header;
  auto result = socket.receive_exact(header, 8);
  if (!result.ok()) {
    // A clean close on a frame boundary is the normal end of a snapshot;
    // anything else (partial header, timeout, reset) is a damaged stream.
    why = (result.status == net::IoStatus::kClosed && result.bytes == 0)
              ? FrameReadError::kEof
              : FrameReadError::kTruncated;
    return std::nullopt;
  }

  std::uint32_t type_be = 0;
  std::uint32_t size_be = 0;
  std::memcpy(&type_be, header.data(), 4);
  std::memcpy(&size_be, header.data() + 4, 4);
  std::uint32_t type = ntohl(type_be);
  std::uint32_t size = ntohl(size_be);

  if (type < static_cast<std::uint32_t>(FrameType::kSysDb) ||
      type > static_cast<std::uint32_t>(FrameType::kDeltaCommit)) {
    why = FrameReadError::kBadType;
    return std::nullopt;
  }
  if (size > kMaxFramePayload) {
    why = FrameReadError::kOversized;
    return std::nullopt;
  }

  Frame frame;
  frame.type = static_cast<FrameType>(type);
  if (size > 0) {
    auto body = socket.receive_exact(frame.payload, size);
    if (!body.ok()) {
      why = FrameReadError::kTruncated;
      return std::nullopt;
    }
  }
  return frame;
}

FrameParseStatus try_parse_frame(std::string_view buffer, Frame* frame,
                                 std::size_t* consumed, FrameReadError* error) {
  FrameReadError scratch = FrameReadError::kNone;
  FrameReadError& why = error ? *error : scratch;
  why = FrameReadError::kNone;
  *consumed = 0;

  if (buffer.size() < 8) return FrameParseStatus::kNeedMore;
  std::uint32_t type_be = 0;
  std::uint32_t size_be = 0;
  std::memcpy(&type_be, buffer.data(), 4);
  std::memcpy(&size_be, buffer.data() + 4, 4);
  std::uint32_t type = ntohl(type_be);
  std::uint32_t size = ntohl(size_be);

  if (type < static_cast<std::uint32_t>(FrameType::kSysDb) ||
      type > static_cast<std::uint32_t>(FrameType::kDeltaCommit)) {
    why = FrameReadError::kBadType;
    return FrameParseStatus::kBad;
  }
  if (size > kMaxFramePayload) {
    why = FrameReadError::kOversized;
    return FrameParseStatus::kBad;
  }
  if (buffer.size() < 8 + static_cast<std::size_t>(size)) {
    return FrameParseStatus::kNeedMore;
  }
  frame->type = static_cast<FrameType>(type);
  frame->payload.assign(buffer.data() + 8, size);
  *consumed = 8 + static_cast<std::size_t>(size);
  return FrameParseStatus::kFrame;
}

}  // namespace smartsock::transport
