#include "transport/record_codec.h"

#include <arpa/inet.h>

namespace smartsock::transport {

namespace {
constexpr std::size_t kMaxPayload = 16 * 1024 * 1024;
}

std::string encode_frame(FrameType type, std::string_view payload) {
  std::string out(8 + payload.size(), '\0');
  std::uint32_t type_be = htonl(static_cast<std::uint32_t>(type));
  std::uint32_t size_be = htonl(static_cast<std::uint32_t>(payload.size()));
  std::memcpy(out.data(), &type_be, 4);
  std::memcpy(out.data() + 4, &size_be, 4);
  std::memcpy(out.data() + 8, payload.data(), payload.size());
  return out;
}

const char* to_string(FrameReadError error) {
  switch (error) {
    case FrameReadError::kNone: return "none";
    case FrameReadError::kEof: return "eof";
    case FrameReadError::kTruncated: return "truncated";
    case FrameReadError::kBadType: return "bad_type";
    case FrameReadError::kOversized: return "oversized";
  }
  return "unknown";
}

std::optional<Frame> read_frame(net::TcpSocket& socket, FrameReadError* error) {
  FrameReadError scratch = FrameReadError::kNone;
  FrameReadError& why = error ? *error : scratch;
  why = FrameReadError::kNone;

  std::string header;
  auto result = socket.receive_exact(header, 8);
  if (!result.ok()) {
    // A clean close on a frame boundary is the normal end of a snapshot;
    // anything else (partial header, timeout, reset) is a damaged stream.
    why = (result.status == net::IoStatus::kClosed && result.bytes == 0)
              ? FrameReadError::kEof
              : FrameReadError::kTruncated;
    return std::nullopt;
  }

  std::uint32_t type_be = 0;
  std::uint32_t size_be = 0;
  std::memcpy(&type_be, header.data(), 4);
  std::memcpy(&size_be, header.data() + 4, 4);
  std::uint32_t type = ntohl(type_be);
  std::uint32_t size = ntohl(size_be);

  if (type < static_cast<std::uint32_t>(FrameType::kSysDb) ||
      type > static_cast<std::uint32_t>(FrameType::kTraceContext)) {
    why = FrameReadError::kBadType;
    return std::nullopt;
  }
  if (size > kMaxPayload) {
    why = FrameReadError::kOversized;
    return std::nullopt;
  }

  Frame frame;
  frame.type = static_cast<FrameType>(type);
  if (size > 0) {
    auto body = socket.receive_exact(frame.payload, size);
    if (!body.ok()) {
      why = FrameReadError::kTruncated;
      return std::nullopt;
    }
  }
  return frame;
}

}  // namespace smartsock::transport
