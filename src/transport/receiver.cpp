#include "transport/receiver.h"

#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "transport/record_codec.h"
#include "util/counters.h"
#include "util/logging.h"

namespace smartsock::transport {

Receiver::Receiver(ReceiverConfig config, ipc::StatusStore& store)
    : config_(std::move(config)),
      store_(&store),
      traffic_(obs::MetricsRegistry::instance().traffic("receiver")),
      rng_(config_.retry_seed) {
  if (auto listener = net::TcpListener::listen(config_.bind)) {
    listener_ = std::move(*listener);
    endpoint_ = listener_.local_endpoint();
  }
}

Receiver::~Receiver() { stop(); }

bool Receiver::ingest(net::TcpSocket& socket) { return ingest(socket, {}); }

bool Receiver::ingest(net::TcpSocket& socket, std::string trace_id) {
  socket.set_traffic_counter(traffic_);
  socket.set_receive_timeout(config_.io_timeout);
  obs::Span span("receiver", "ingest", trace_id);
  std::size_t frames = 0;
  bool applied = false;
  // One connection carries up to three database frames; a clean EOF on a
  // frame boundary ends it. A damaged stream — truncated frame, unknown
  // type, oversized or undecodable payload — aborts the connection instead
  // of masquerading as end-of-snapshot (the pre-ISSUE-3 behaviour silently
  // dropped the rest of the transfer).
  const char* damage = nullptr;
  FrameReadError why = FrameReadError::kNone;
  while (damage == nullptr) {
    auto frame = read_frame(socket, &why);
    if (!frame) {
      if (why != FrameReadError::kEof) damage = to_string(why);
      break;
    }
    ++frames;
    switch (frame->type) {
      case FrameType::kTraceContext:
        // The transmitter's trace id for this snapshot — adopt it so both
        // halves of the transfer reconstruct as one trace.
        trace_id = frame->payload;
        span.set_trace_id(trace_id);
        obs::TraceEvent(util::LogLevel::kDebug, "receiver", "snapshot_recv", trace_id)
            .kv("peer", socket.peer_endpoint().to_string());
        break;
      case FrameType::kSysDb:
        if (auto records = decode_records<ipc::SysRecord>(frame->payload)) {
          store_->replace_sys(*records);
          applied = true;
        } else {
          damage = "undecodable sys records";
        }
        break;
      case FrameType::kNetDb:
        if (auto records = decode_records<ipc::NetRecord>(frame->payload)) {
          store_->replace_net(*records);
          applied = true;
        } else {
          damage = "undecodable net records";
        }
        break;
      case FrameType::kSecDb:
        if (auto records = decode_records<ipc::SecRecord>(frame->payload)) {
          store_->replace_sec(*records);
          applied = true;
        } else {
          damage = "undecodable sec records";
        }
        break;
      case FrameType::kUpdateRequest:
        break;  // not meaningful on this side
    }
  }
  span.tag("frames", frames).tag("applied", applied).tag("damaged", damage != nullptr);
  if (damage != nullptr) {
    malformed_frames_.fetch_add(1, std::memory_order_relaxed);
    obs::MetricsRegistry::instance()
        .counter("receiver_malformed_frames_total")
        ->inc();
    SMARTSOCK_LOG(kWarn, "receiver")
        << "aborting ingest connection on damaged frame stream: " << damage;
    socket.close();
    return false;
  }
  if (applied) snapshots_received_.fetch_add(1, std::memory_order_relaxed);
  return applied;
}

bool Receiver::accept_once(util::Duration timeout) {
  if (!listener_.valid()) return false;
  auto client = listener_.accept(timeout);
  if (!client) return false;
  return ingest(*client);
}

bool Receiver::pull_once(const net::Endpoint& transmitter) {
  auto socket = net::TcpSocket::connect(transmitter, config_.io_timeout);
  if (!socket) {
    SMARTSOCK_LOG(kWarn, "receiver")
        << "cannot reach transmitter " << transmitter.to_string();
    return false;
  }
  // The pull's trace id travels as the request payload; the transmitter
  // echoes it in its kTraceContext frame, so either side's ring shows the
  // same id for this transfer.
  std::string trace_id = obs::mint_trace_id(rng_);
  obs::TraceEvent(util::LogLevel::kDebug, "receiver", "pull_request", trace_id)
      .kv("transmitter", transmitter.to_string());
  if (!socket->send_all(encode_frame(FrameType::kUpdateRequest, trace_id)).ok()) {
    return false;
  }
  return ingest(*socket, std::move(trace_id));
}

bool Receiver::pull_from(const net::Endpoint& transmitter) {
  std::lock_guard<std::mutex> lock(pull_mu_);
  util::RetryState retry(config_.pull_retry, rng_, util::SteadyClock::instance());
  obs::Counter* retries =
      obs::MetricsRegistry::instance().counter("receiver_pull_retries_total");
  while (true) {
    if (pull_once(transmitter)) return true;
    if (!retry.backoff()) return false;
    retries->inc();
  }
}

bool Receiver::start() {
  if (!listener_.valid() || thread_.joinable()) return false;
  stop_requested_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { run_loop(); });
  return true;
}

void Receiver::stop() {
  stop_requested_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
}

void Receiver::run_loop() {
  while (!stop_requested_.load(std::memory_order_acquire)) {
    accept_once(std::chrono::milliseconds(50));
  }
}

}  // namespace smartsock::transport
