#include "transport/receiver.h"

#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "util/counters.h"
#include "util/logging.h"

namespace smartsock::transport {

namespace {

/// Applies one tombstone frame: decode the key array and erase each key.
/// Erasing a key that was already recreated locally is prevented by frame
/// order — the transmitter sends tombstones before the delta records that
/// may recreate them.
template <typename Key, typename Erase>
bool apply_tombstones(std::string_view payload, Erase erase) {
  auto keys = decode_records<Key>(payload);
  if (!keys) return false;
  for (const Key& key : *keys) erase(key);
  return true;
}

template <typename Record, typename Put>
bool apply_upserts(std::string_view payload, Put put) {
  auto records = decode_records<Record>(payload);
  if (!records) return false;
  for (const Record& record : *records) put(record);
  return true;
}

}  // namespace

Receiver::Receiver(ReceiverConfig config, ipc::StatusStore& store)
    : config_(std::move(config)),
      store_(&store),
      traffic_(obs::MetricsRegistry::instance().traffic("receiver")),
      deltas_applied_counter_(
          obs::MetricsRegistry::instance().counter("receiver_delta_applied_total")),
      rng_(config_.retry_seed) {
  if (auto listener = net::TcpListener::listen(config_.bind)) {
    listener_ = std::move(*listener);
    endpoint_ = listener_.local_endpoint();
  }
}

Receiver::~Receiver() { stop(); }

bool Receiver::ingest(net::TcpSocket& socket) { return ingest(socket, {}); }

bool Receiver::ingest(net::TcpSocket& socket, std::string trace_id) {
  socket.set_traffic_counter(traffic_);
  socket.set_receive_timeout(config_.io_timeout);
  socket.set_send_timeout(config_.io_timeout);
  obs::Span span("receiver", "ingest", trace_id);
  std::size_t frames = 0;
  bool applied = false;
  // Delta-transfer state for this connection. An offer names the source;
  // the commit at the end is what advances replica_states_ for it.
  bool saw_offer = false;
  bool saw_full_db = false;
  bool saw_delta_frames = false;
  bool committed = false;
  std::uint64_t source_id = 0;
  // One connection carries up to three database frames; a clean EOF on a
  // frame boundary ends it. A damaged stream — truncated frame, unknown
  // type, oversized or undecodable payload — aborts the connection instead
  // of masquerading as end-of-snapshot (the pre-ISSUE-3 behaviour silently
  // dropped the rest of the transfer).
  const char* damage = nullptr;
  FrameReadError why = FrameReadError::kNone;
  while (damage == nullptr) {
    auto frame = read_frame(socket, &why);
    if (!frame) {
      if (why != FrameReadError::kEof) damage = to_string(why);
      break;
    }
    if (!config_.delta_enabled && frame->type > FrameType::kTraceContext) {
      // Pre-delta behaviour: replication frames are outside the known range
      // and desync the stream. Keeps this build usable as an "old receiver"
      // in compatibility tests.
      damage = to_string(FrameReadError::kBadType);
      break;
    }
    ++frames;
    switch (frame->type) {
      case FrameType::kTraceContext:
        // The transmitter's trace id for this snapshot — adopt it so both
        // halves of the transfer reconstruct as one trace.
        trace_id = frame->payload;
        span.set_trace_id(trace_id);
        obs::TraceEvent(util::LogLevel::kDebug, "receiver", "snapshot_recv", trace_id)
            .kv("peer", socket.peer_endpoint().to_string());
        break;
      case FrameType::kSysDb:
        if (auto records = decode_records<ipc::SysRecord>(frame->payload)) {
          store_->replace_sys(*records);
          applied = true;
          saw_full_db = true;
        } else {
          damage = "undecodable sys records";
        }
        break;
      case FrameType::kNetDb:
        if (auto records = decode_records<ipc::NetRecord>(frame->payload)) {
          store_->replace_net(*records);
          applied = true;
          saw_full_db = true;
        } else {
          damage = "undecodable net records";
        }
        break;
      case FrameType::kSecDb:
        if (auto records = decode_records<ipc::SecRecord>(frame->payload)) {
          store_->replace_sec(*records);
          applied = true;
          saw_full_db = true;
        } else {
          damage = "undecodable sec records";
        }
        break;
      case FrameType::kDeltaOffer: {
        auto offer = decode_delta_offer(frame->payload);
        if (!offer) {
          damage = "undecodable delta offer";
          break;
        }
        saw_offer = true;
        source_id = offer->source_id;
        DeltaState acked{};
        {
          std::lock_guard<std::mutex> lock(replica_mu_);
          auto it = replica_states_.find(source_id);
          if (it != replica_states_.end()) acked = it->second;
        }
        if (!socket.send_all(encode_frame(FrameType::kDeltaAccept,
                                          encode_delta_state(acked)))
                 .ok()) {
          damage = "delta accept send failed";
        }
        break;
      }
      case FrameType::kSysTombstone:
        saw_delta_frames = true;
        if (!apply_tombstones<ipc::SysKey>(
                frame->payload, [this](const ipc::SysKey& k) { store_->erase_sys(k); })) {
          damage = "undecodable sys tombstones";
        }
        break;
      case FrameType::kNetTombstone:
        saw_delta_frames = true;
        if (!apply_tombstones<ipc::NetKey>(
                frame->payload, [this](const ipc::NetKey& k) { store_->erase_net(k); })) {
          damage = "undecodable net tombstones";
        }
        break;
      case FrameType::kSecTombstone:
        saw_delta_frames = true;
        if (!apply_tombstones<ipc::SecKey>(
                frame->payload, [this](const ipc::SecKey& k) { store_->erase_sec(k); })) {
          damage = "undecodable sec tombstones";
        }
        break;
      case FrameType::kSysDelta:
        saw_delta_frames = true;
        if (!apply_upserts<ipc::SysRecord>(
                frame->payload, [this](const ipc::SysRecord& r) { store_->put_sys(r); })) {
          damage = "undecodable sys delta";
        }
        break;
      case FrameType::kNetDelta:
        saw_delta_frames = true;
        if (!apply_upserts<ipc::NetRecord>(
                frame->payload, [this](const ipc::NetRecord& r) { store_->put_net(r); })) {
          damage = "undecodable net delta";
        }
        break;
      case FrameType::kSecDelta:
        saw_delta_frames = true;
        if (!apply_upserts<ipc::SecRecord>(
                frame->payload, [this](const ipc::SecRecord& r) { store_->put_sec(r); })) {
          damage = "undecodable sec delta";
        }
        break;
      case FrameType::kDeltaCommit: {
        auto state = decode_delta_state(frame->payload);
        if (!state || !saw_offer) {
          damage = !state ? "undecodable delta commit" : "commit without offer";
          break;
        }
        {
          std::lock_guard<std::mutex> lock(replica_mu_);
          replica_states_[source_id] = *state;
        }
        committed = true;
        applied = true;
        break;
      }
      case FrameType::kDeltaAccept:
        damage = "unexpected delta accept";  // receiver-to-transmitter only
        break;
      case FrameType::kUpdateRequest:
        break;  // not meaningful on this side
    }
  }
  // An incremental transfer counts only once sealed by its commit; an empty
  // delta (heartbeat with no changes) still counts — the replica provably
  // caught up to the transmitter's version.
  bool delta_applied = committed && !saw_full_db;
  span.tag("frames", frames)
      .tag("applied", applied)
      .tag("delta", delta_applied)
      .tag("delta_frames", saw_delta_frames)
      .tag("damaged", damage != nullptr);
  if (damage != nullptr) {
    malformed_frames_.fetch_add(1, std::memory_order_relaxed);
    obs::MetricsRegistry::instance()
        .counter("receiver_malformed_frames_total")
        ->inc();
    SMARTSOCK_LOG(kWarn, "receiver")
        << "aborting ingest connection on damaged frame stream: " << damage;
    socket.close();
    return false;
  }
  if (delta_applied) {
    deltas_applied_.fetch_add(1, std::memory_order_relaxed);
    deltas_applied_counter_->inc();
  }
  if (applied) snapshots_received_.fetch_add(1, std::memory_order_relaxed);
  return applied;
}

bool Receiver::accept_once(util::Duration timeout) {
  if (!listener_.valid()) return false;
  auto client = listener_.accept(timeout);
  if (!client) return false;
  return ingest(*client);
}

bool Receiver::pull_once(const net::Endpoint& transmitter) {
  auto socket = net::TcpSocket::connect(transmitter, config_.io_timeout);
  if (!socket) {
    SMARTSOCK_LOG(kWarn, "receiver")
        << "cannot reach transmitter " << transmitter.to_string();
    return false;
  }
  // The pull's trace id travels as the request payload; the transmitter
  // echoes it in its kTraceContext frame, so either side's ring shows the
  // same id for this transfer.
  std::string trace_id = obs::mint_trace_id(rng_);
  obs::TraceEvent(util::LogLevel::kDebug, "receiver", "pull_request", trace_id)
      .kv("transmitter", transmitter.to_string());
  if (!socket->send_all(encode_frame(FrameType::kUpdateRequest, trace_id)).ok()) {
    return false;
  }
  return ingest(*socket, std::move(trace_id));
}

bool Receiver::pull_from(const net::Endpoint& transmitter) {
  std::lock_guard<std::mutex> lock(pull_mu_);
  util::RetryState retry(config_.pull_retry, rng_, util::SteadyClock::instance());
  obs::Counter* retries =
      obs::MetricsRegistry::instance().counter("receiver_pull_retries_total");
  while (true) {
    if (pull_once(transmitter)) return true;
    if (!retry.backoff()) return false;
    retries->inc();
  }
}

bool Receiver::start() {
  if (!listener_.valid() || thread_.joinable()) return false;
  stop_requested_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { run_loop(); });
  return true;
}

void Receiver::stop() {
  stop_requested_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
}

void Receiver::run_loop() {
  while (!stop_requested_.load(std::memory_order_acquire)) {
    accept_once(std::chrono::milliseconds(50));
  }
}

}  // namespace smartsock::transport
