#include "transport/receiver.h"

#include "obs/metrics.h"
#include "transport/record_codec.h"
#include "util/counters.h"
#include "util/logging.h"

namespace smartsock::transport {

Receiver::Receiver(ReceiverConfig config, ipc::StatusStore& store)
    : config_(std::move(config)),
      store_(&store),
      traffic_(obs::MetricsRegistry::instance().traffic("receiver")) {
  if (auto listener = net::TcpListener::listen(config_.bind)) {
    listener_ = std::move(*listener);
    endpoint_ = listener_.local_endpoint();
  }
}

Receiver::~Receiver() { stop(); }

bool Receiver::ingest(net::TcpSocket& socket) {
  socket.set_traffic_counter(traffic_);
  socket.set_receive_timeout(config_.io_timeout);
  bool applied = false;
  // One connection carries up to three database frames; EOF ends it.
  while (auto frame = read_frame(socket)) {
    switch (frame->type) {
      case FrameType::kSysDb:
        if (auto records = decode_records<ipc::SysRecord>(frame->payload)) {
          store_->replace_sys(*records);
          applied = true;
        }
        break;
      case FrameType::kNetDb:
        if (auto records = decode_records<ipc::NetRecord>(frame->payload)) {
          store_->replace_net(*records);
          applied = true;
        }
        break;
      case FrameType::kSecDb:
        if (auto records = decode_records<ipc::SecRecord>(frame->payload)) {
          store_->replace_sec(*records);
          applied = true;
        }
        break;
      case FrameType::kUpdateRequest:
        break;  // not meaningful on this side
    }
  }
  if (applied) snapshots_received_.fetch_add(1, std::memory_order_relaxed);
  return applied;
}

bool Receiver::accept_once(util::Duration timeout) {
  if (!listener_.valid()) return false;
  auto client = listener_.accept(timeout);
  if (!client) return false;
  return ingest(*client);
}

bool Receiver::pull_from(const net::Endpoint& transmitter) {
  auto socket = net::TcpSocket::connect(transmitter, config_.io_timeout);
  if (!socket) {
    SMARTSOCK_LOG(kWarn, "receiver")
        << "cannot reach transmitter " << transmitter.to_string();
    return false;
  }
  if (!socket->send_all(encode_frame(FrameType::kUpdateRequest, "")).ok()) return false;
  return ingest(*socket);
}

bool Receiver::start() {
  if (!listener_.valid() || thread_.joinable()) return false;
  stop_requested_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { run_loop(); });
  return true;
}

void Receiver::stop() {
  stop_requested_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
}

void Receiver::run_loop() {
  while (!stop_requested_.load(std::memory_order_acquire)) {
    accept_once(std::chrono::milliseconds(50));
  }
}

}  // namespace smartsock::transport
