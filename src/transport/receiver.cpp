#include "transport/receiver.h"

#include <functional>

#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "util/counters.h"
#include "util/logging.h"

namespace smartsock::transport {

namespace {

/// Applies one tombstone frame: decode the key array and erase each key.
/// Erasing a key that was already recreated locally is prevented by frame
/// order — the transmitter sends tombstones before the delta records that
/// may recreate them.
template <typename Key, typename Erase>
bool apply_tombstones(std::string_view payload, Erase erase) {
  auto keys = decode_records<Key>(payload);
  if (!keys) return false;
  for (const Key& key : *keys) erase(key);
  return true;
}

template <typename Record, typename Put>
bool apply_upserts(std::string_view payload, Put put) {
  auto records = decode_records<Record>(payload);
  if (!records) return false;
  for (const Record& record : *records) put(record);
  return true;
}

}  // namespace

// One transfer's frame state machine. The blocking path feeds it whole
// frames from read_frame; the reactor path feeds it frames cut out of the
// connection's input buffer by try_parse_frame. Both end in finish(), which
// seals the span and the counters exactly once.
struct Receiver::IngestSession {
  Receiver* owner;
  std::function<bool(std::string)> send_reply;  // kDeltaAccept transport
  std::string peer;
  obs::Span span;
  std::string trace_id;

  std::size_t frames = 0;
  bool applied = false;
  // Delta-transfer state for this connection. An offer names the source;
  // the commit at the end is what advances replica_states_ for it.
  bool saw_offer = false;
  bool saw_full_db = false;
  bool saw_delta_frames = false;
  bool committed = false;
  std::uint64_t source_id = 0;
  // A damaged stream — truncated frame, unknown type, oversized or
  // undecodable payload — aborts the connection instead of masquerading as
  // end-of-snapshot (the pre-ISSUE-3 behaviour silently dropped the rest of
  // the transfer).
  const char* damage = nullptr;
  bool finished = false;

  IngestSession(Receiver* owner, std::string trace, std::function<bool(std::string)> send,
                std::string peer)
      : owner(owner),
        send_reply(std::move(send)),
        peer(std::move(peer)),
        span("receiver", "ingest", trace),
        trace_id(std::move(trace)) {}

  /// Applies one frame; false means the stream is damaged and the
  /// connection must be aborted.
  bool on_frame(const Frame& frame) {
    if (!owner->config_.delta_enabled && frame.type > FrameType::kTraceContext) {
      // Pre-delta behaviour: replication frames are outside the known range
      // and desync the stream. Keeps this build usable as an "old receiver"
      // in compatibility tests.
      damage = to_string(FrameReadError::kBadType);
      return false;
    }
    ++frames;
    switch (frame.type) {
      case FrameType::kTraceContext:
        // The transmitter's trace id for this snapshot — adopt it so both
        // halves of the transfer reconstruct as one trace.
        trace_id = frame.payload;
        span.set_trace_id(trace_id);
        obs::TraceEvent(util::LogLevel::kDebug, "receiver", "snapshot_recv", trace_id)
            .kv("peer", peer);
        break;
      case FrameType::kSysDb:
        if (auto records = decode_records<ipc::SysRecord>(frame.payload)) {
          owner->store_->replace_sys(*records);
          applied = true;
          saw_full_db = true;
        } else {
          damage = "undecodable sys records";
        }
        break;
      case FrameType::kNetDb:
        if (auto records = decode_records<ipc::NetRecord>(frame.payload)) {
          owner->store_->replace_net(*records);
          applied = true;
          saw_full_db = true;
        } else {
          damage = "undecodable net records";
        }
        break;
      case FrameType::kSecDb:
        if (auto records = decode_records<ipc::SecRecord>(frame.payload)) {
          owner->store_->replace_sec(*records);
          applied = true;
          saw_full_db = true;
        } else {
          damage = "undecodable sec records";
        }
        break;
      case FrameType::kDeltaOffer: {
        auto offer = decode_delta_offer(frame.payload);
        if (!offer) {
          damage = "undecodable delta offer";
          break;
        }
        saw_offer = true;
        source_id = offer->source_id;
        DeltaState acked{};
        {
          std::lock_guard<std::mutex> lock(owner->replica_mu_);
          auto it = owner->replica_states_.find(source_id);
          if (it != owner->replica_states_.end()) acked = it->second;
        }
        if (!send_reply(encode_frame(FrameType::kDeltaAccept, encode_delta_state(acked)))) {
          damage = "delta accept send failed";
        }
        break;
      }
      case FrameType::kSysTombstone:
        saw_delta_frames = true;
        if (!apply_tombstones<ipc::SysKey>(frame.payload, [this](const ipc::SysKey& k) {
              owner->store_->erase_sys(k);
            })) {
          damage = "undecodable sys tombstones";
        }
        break;
      case FrameType::kNetTombstone:
        saw_delta_frames = true;
        if (!apply_tombstones<ipc::NetKey>(frame.payload, [this](const ipc::NetKey& k) {
              owner->store_->erase_net(k);
            })) {
          damage = "undecodable net tombstones";
        }
        break;
      case FrameType::kSecTombstone:
        saw_delta_frames = true;
        if (!apply_tombstones<ipc::SecKey>(frame.payload, [this](const ipc::SecKey& k) {
              owner->store_->erase_sec(k);
            })) {
          damage = "undecodable sec tombstones";
        }
        break;
      case FrameType::kSysDelta:
        saw_delta_frames = true;
        if (!apply_upserts<ipc::SysRecord>(frame.payload, [this](const ipc::SysRecord& r) {
              owner->store_->put_sys(r);
            })) {
          damage = "undecodable sys delta";
        }
        break;
      case FrameType::kNetDelta:
        saw_delta_frames = true;
        if (!apply_upserts<ipc::NetRecord>(frame.payload, [this](const ipc::NetRecord& r) {
              owner->store_->put_net(r);
            })) {
          damage = "undecodable net delta";
        }
        break;
      case FrameType::kSecDelta:
        saw_delta_frames = true;
        if (!apply_upserts<ipc::SecRecord>(frame.payload, [this](const ipc::SecRecord& r) {
              owner->store_->put_sec(r);
            })) {
          damage = "undecodable sec delta";
        }
        break;
      case FrameType::kDeltaCommit: {
        auto state = decode_delta_state(frame.payload);
        if (!state || !saw_offer) {
          damage = !state ? "undecodable delta commit" : "commit without offer";
          break;
        }
        {
          std::lock_guard<std::mutex> lock(owner->replica_mu_);
          owner->replica_states_[source_id] = *state;
        }
        // Monotonic CAS-max: concurrent pushes from multiple transmitters
        // must never move the published replicated version backwards.
        {
          std::uint64_t seen =
              owner->replicated_version_.load(std::memory_order_relaxed);
          while (seen < state->version &&
                 !owner->replicated_version_.compare_exchange_weak(
                     seen, state->version, std::memory_order_relaxed)) {
          }
        }
        committed = true;
        applied = true;
        break;
      }
      case FrameType::kDeltaAccept:
        damage = "unexpected delta accept";  // receiver-to-transmitter only
        break;
      case FrameType::kUpdateRequest:
        break;  // not meaningful on this side
    }
    return damage == nullptr;
  }

  /// Seals the transfer: span tags, counters, warn log on damage. Safe to
  /// call more than once; only the first call counts. Returns whether the
  /// transfer applied anything (false for damaged streams).
  bool finish() {
    if (finished) return damage == nullptr && applied;
    finished = true;
    // An incremental transfer counts only once sealed by its commit; an
    // empty delta (heartbeat with no changes) still counts — the replica
    // provably caught up to the transmitter's version.
    bool delta_applied = committed && !saw_full_db;
    span.tag("frames", frames)
        .tag("applied", applied)
        .tag("delta", delta_applied)
        .tag("delta_frames", saw_delta_frames)
        .tag("damaged", damage != nullptr);
    if (damage != nullptr) {
      owner->malformed_frames_.fetch_add(1, std::memory_order_relaxed);
      obs::MetricsRegistry::instance().counter("receiver_malformed_frames_total")->inc();
      SMARTSOCK_LOG(kWarn, "receiver")
          << "aborting ingest connection on damaged frame stream: " << damage;
      return false;
    }
    if (delta_applied) {
      owner->deltas_applied_.fetch_add(1, std::memory_order_relaxed);
      owner->deltas_applied_counter_->inc();
    }
    if (applied) owner->snapshots_received_.fetch_add(1, std::memory_order_relaxed);
    return applied;
  }
};

Receiver::Receiver(ReceiverConfig config, ipc::StatusStore& store)
    : config_(std::move(config)),
      store_(&store),
      traffic_(obs::MetricsRegistry::instance().traffic("receiver")),
      deltas_applied_counter_(
          obs::MetricsRegistry::instance().counter("receiver_delta_applied_total")),
      rng_(config_.retry_seed) {
  if (auto listener = net::TcpListener::listen(config_.bind)) {
    listener_ = std::move(*listener);
    endpoint_ = listener_.local_endpoint();
  }
}

Receiver::~Receiver() { stop(); }

bool Receiver::ingest(net::TcpSocket& socket) { return ingest(socket, {}); }

bool Receiver::ingest(net::TcpSocket& socket, std::string trace_id) {
  socket.set_traffic_counter(traffic_);
  socket.set_receive_timeout(config_.io_timeout);
  socket.set_send_timeout(config_.io_timeout);
  IngestSession session(
      this, std::move(trace_id),
      [&socket](std::string bytes) { return socket.send_all(bytes).ok(); },
      socket.peer_endpoint().to_string());
  // One connection carries up to three database frames; a clean EOF on a
  // frame boundary ends it.
  FrameReadError why = FrameReadError::kNone;
  while (session.damage == nullptr) {
    auto frame = read_frame(socket, &why);
    if (!frame) {
      if (why != FrameReadError::kEof) session.damage = to_string(why);
      break;
    }
    if (!session.on_frame(*frame)) break;
  }
  bool applied = session.finish();
  if (session.damage != nullptr) {
    socket.close();
    return false;
  }
  return applied;
}

// --- reactor-hosted serving (ISSUE 6) -----------------------------------------

struct Receiver::ClientState {
  std::unique_ptr<IngestSession> session;
  net::TimerId idle_timer = 0;
};

void Receiver::arm_idle_timer(net::Connection& client, ClientState& state) {
  if (!client.alive()) return;  // on_close already cancelled the timers
  if (state.idle_timer != 0) reactor_->cancel_timer(state.idle_timer);
  net::Connection* raw = &client;
  // Matches the blocking path's receive timeout: a transmitter that stalls
  // mid-transfer is a truncated stream, not a clean end.
  state.idle_timer = reactor_->add_timer(config_.io_timeout, [raw] {
    auto held = std::static_pointer_cast<ClientState>(raw->user_data);
    held->idle_timer = 0;
    held->session->damage = to_string(FrameReadError::kTruncated);
    held->session->finish();
    raw->close_now();
  });
}

void Receiver::on_client_data(net::Connection& client) {
  auto state = std::static_pointer_cast<ClientState>(client.user_data);
  arm_idle_timer(client, *state);  // any progress resets the deadline
  Frame frame;
  std::size_t consumed = 0;
  FrameReadError why = FrameReadError::kNone;
  while (!client.closing()) {
    FrameParseStatus status = try_parse_frame(client.input(), &frame, &consumed, &why);
    if (status == FrameParseStatus::kNeedMore) return;
    if (status == FrameParseStatus::kBad) {
      state->session->damage = to_string(why);
      state->session->finish();
      client.close_now();
      return;
    }
    client.consume(consumed);
    if (!state->session->on_frame(frame)) {
      state->session->finish();
      client.close_now();
      return;
    }
  }
}

void Receiver::on_client(net::TcpSocket socket) {
  socket.set_traffic_counter(traffic_);
  net::ConnectionHandler handler;
  handler.label = "receiver_ingest";
  handler.on_data = [this](net::Connection& client) { on_client_data(client); };
  handler.on_close = [this](net::Connection& client, bool clean) {
    auto state = std::static_pointer_cast<ClientState>(client.user_data);
    if (state) {
      if (state->idle_timer != 0) reactor_->cancel_timer(state->idle_timer);
      if (state->session && !state->session->finished) {
        if (!clean) {
          state->session->damage = to_string(FrameReadError::kTruncated);
        } else if (!client.input().empty()) {
          // Clean close mid-frame: the tail of the stream never arrived.
          state->session->damage = to_string(FrameReadError::kTruncated);
        }
        state->session->finish();
      }
    }
    clients_.erase(&client);
  };
  net::Connection* client = reactor_->add_connection(std::move(socket), handler);
  if (client == nullptr) return;
  // try_parse_frame only completes once the whole frame is buffered, so the
  // input cap must admit the largest legal frame; the reactor default (1 MiB)
  // would pause reading forever on a large snapshot.
  client->set_input_limit(kMaxFramePayload + 8);
  clients_.insert(client);
  auto state = std::make_shared<ClientState>();
  net::Connection* raw = client;
  state->session = std::make_unique<IngestSession>(
      this, std::string{},
      [raw](std::string bytes) {
        raw->send(bytes);
        return true;  // buffered; a dead peer surfaces via on_close
      },
      client->socket().peer_endpoint().to_string());
  client->user_data = state;
  arm_idle_timer(*client, *state);
}

bool Receiver::accept_once(util::Duration timeout) {
  if (!listener_.valid()) return false;
  auto client = listener_.accept(timeout);
  if (!client) return false;
  return ingest(*client);
}

bool Receiver::pull_once(const net::Endpoint& transmitter) {
  auto socket = net::TcpSocket::connect(transmitter, config_.io_timeout);
  if (!socket) {
    SMARTSOCK_LOG(kWarn, "receiver")
        << "cannot reach transmitter " << transmitter.to_string();
    return false;
  }
  // The pull's trace id travels as the request payload; the transmitter
  // echoes it in its kTraceContext frame, so either side's ring shows the
  // same id for this transfer.
  std::string trace_id = obs::mint_trace_id(rng_);
  obs::TraceEvent(util::LogLevel::kDebug, "receiver", "pull_request", trace_id)
      .kv("transmitter", transmitter.to_string());
  if (!socket->send_all(encode_frame(FrameType::kUpdateRequest, trace_id)).ok()) {
    return false;
  }
  return ingest(*socket, std::move(trace_id));
}

bool Receiver::pull_from(const net::Endpoint& transmitter) {
  std::lock_guard<std::mutex> lock(pull_mu_);
  util::RetryState retry(config_.pull_retry, rng_, util::SteadyClock::instance());
  obs::Counter* retries =
      obs::MetricsRegistry::instance().counter("receiver_pull_retries_total");
  while (true) {
    if (pull_once(transmitter)) return true;
    if (!retry.backoff()) return false;
    retries->inc();
  }
}

bool Receiver::start() {
  if (!listener_.valid() || reactor_ != nullptr) return false;
  if (config_.reactor != nullptr) {
    reactor_ = config_.reactor;
  } else {
    own_reactor_ = std::make_unique<net::Reactor>();
    reactor_ = own_reactor_.get();
  }
  listener_id_ = reactor_->add_listener(
      &listener_, [this](net::TcpSocket socket) { on_client(std::move(socket)); },
      "receiver_accept");
  if (own_reactor_ && !own_reactor_->start()) {
    own_reactor_.reset();
    reactor_ = nullptr;
    return false;
  }
  return true;
}

void Receiver::stop() {
  if (reactor_ == nullptr) return;
  net::Reactor* reactor = reactor_;
  if (own_reactor_) own_reactor_->stop();
  reactor->run_on_loop([this] {
    if (listener_id_ != 0) reactor_->remove_listener(listener_id_);
    std::vector<net::Connection*> open(clients_.begin(), clients_.end());
    for (net::Connection* client : open) client->close_now();
  });
  listener_id_ = 0;
  own_reactor_.reset();
  reactor_ = nullptr;
  // accept_once() (the blocking path) stays usable after stop().
  listener_.set_nonblocking(false);
}

}  // namespace smartsock::transport
