// Receiver (§3.5.2).
//
// Runs on the wizard machine; mirrors the monitor machine's databases into
// the wizard-side store so "the wizard can directly use the contents as if
// they were generated locally". Centralized mode accepts pushes from one or
// more transmitters; distributed mode pulls on demand when the wizard gets a
// user request.
//
// ISSUE 5: a delta-capable transmitter opens its push with kDeltaOffer; the
// receiver answers with the (epoch, version) it last committed for that
// source and then applies the incoming record/tombstone frames in place.
// Replica state advances only on kDeltaCommit, so a transfer cut short by
// the network is simply re-covered by the next push (upserts and tombstone
// deletes are idempotent).
//
// ISSUE 6: started receivers host their listener on a net::Reactor (their
// own, or a shared per-daemon loop via config.reactor). Every pushing
// transmitter becomes one Connection whose buffered input is fed through the
// incremental frame parser, so many concurrent pushes interleave on one
// loop thread instead of serializing behind a blocking accept loop. The
// blocking accept_once()/pull_from() entry points are unchanged.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ipc/status_store.h"
#include "net/reactor.h"
#include "net/tcp_listener.h"
#include "obs/metrics.h"
#include "transport/record_codec.h"
#include "util/clock.h"
#include "util/retry.h"
#include "util/rng.h"

namespace smartsock::transport {

struct ReceiverConfig {
  net::Endpoint bind = net::Endpoint::loopback(0);
  util::Duration io_timeout = std::chrono::seconds(2);
  /// Distributed-mode pulls retry through this policy (connect refused,
  /// damaged stream). max_attempts = 1 disables retrying.
  util::RetryPolicy pull_retry{};
  /// Seed for the retry jitter (deterministic in tests).
  std::uint64_t retry_seed = 0x5ec04dca45ull;

  /// Answer delta offers and apply incremental pushes. Off = behave exactly
  /// like a pre-ISSUE-5 receiver: any replication frame beyond the original
  /// five types aborts the connection as a damaged stream.
  bool delta_enabled = true;

  /// Shared per-daemon event loop; null = the receiver runs its own reactor.
  net::Reactor* reactor = nullptr;
};

class Receiver {
 public:
  Receiver(ReceiverConfig config, ipc::StatusStore& store);
  ~Receiver();

  Receiver(const Receiver&) = delete;
  Receiver& operator=(const Receiver&) = delete;

  /// The TCP endpoint transmitters push to (resolved after bind).
  net::Endpoint endpoint() const { return endpoint_; }

  /// Centralized mode: reactor-hosted accept loop.
  bool start();
  void stop();

  /// Accepts and ingests at most one transmitter connection (polling entry
  /// point). Returns true if a snapshot was applied.
  bool accept_once(util::Duration timeout);

  /// Distributed mode: connects to a passive transmitter, requests an
  /// update and ingests the reply. Returns true on success.
  bool pull_from(const net::Endpoint& transmitter);

  std::uint64_t snapshots_received() const {
    return snapshots_received_.load(std::memory_order_relaxed);
  }
  /// Highest source (monitor-store) version committed by any transmitter's
  /// kDeltaCommit so far. Unlike the local store's write counter, this value
  /// is identical across every wizard replica that applied the same push —
  /// it is what replies stamp for the client's monotone-version pinning
  /// (ISSUE 8). Zero until the first committed transfer (legacy full
  /// snapshots carry no commit frame).
  std::uint64_t replicated_version() const {
    return replicated_version_.load(std::memory_order_relaxed);
  }
  /// Committed incremental transfers (subset of snapshots_received).
  std::uint64_t deltas_applied() const {
    return deltas_applied_.load(std::memory_order_relaxed);
  }
  /// Connections aborted because of a damaged frame stream (truncated,
  /// bad type, oversized, or undecodable records). Mirrors the
  /// `receiver_malformed_frames_total` registry counter.
  std::uint64_t malformed_frames() const {
    return malformed_frames_.load(std::memory_order_relaxed);
  }
  bool valid() const { return listener_.valid(); }

 private:
  /// One transfer's frame state machine, shared by the blocking ingest loop
  /// and the reactor's incremental parse path (defined in receiver.cpp).
  struct IngestSession;
  struct ClientState;

  bool ingest(net::TcpSocket& socket);
  /// `trace_id` seeds the ingest span for the pull path; the push path
  /// starts untraced and adopts the id from the kTraceContext frame.
  bool ingest(net::TcpSocket& socket, std::string trace_id);
  bool pull_once(const net::Endpoint& transmitter);

  void on_client(net::TcpSocket socket);         // loop thread
  void on_client_data(net::Connection& client);  // loop thread
  void arm_idle_timer(net::Connection& client, ClientState& state);

  ReceiverConfig config_;
  ipc::StatusStore* store_;
  net::TcpListener listener_;
  net::Endpoint endpoint_;
  // Registry-owned; shared by every ingest connection instead of
  // registering a fresh counter per accept.
  util::TrafficCounter* traffic_ = nullptr;
  obs::Counter* deltas_applied_counter_ = nullptr;

  std::mutex pull_mu_;  // serializes pull retries (shares rng_)
  util::Rng rng_;

  /// Last committed (epoch, version) per transmitter source_id. Only a
  /// kDeltaCommit advances an entry, so half-applied transfers never narrow
  /// the version range the next push must cover.
  std::mutex replica_mu_;
  std::unordered_map<std::uint64_t, DeltaState> replica_states_;

  std::unique_ptr<net::Reactor> own_reactor_;
  net::Reactor* reactor_ = nullptr;  // non-null while started
  net::ListenerId listener_id_ = 0;
  std::unordered_set<net::Connection*> clients_;  // loop-thread-only

  std::atomic<std::uint64_t> snapshots_received_{0};
  std::atomic<std::uint64_t> deltas_applied_{0};
  std::atomic<std::uint64_t> malformed_frames_{0};
  std::atomic<std::uint64_t> replicated_version_{0};
};

}  // namespace smartsock::transport
