// IPv4 endpoint value type.
//
// Server addresses flow through every wire format in the system (probe
// reports, wizard replies, matmul/massd service addresses), always as
// human-readable "a.b.c.d:port" strings per the thesis's ASCII-first design.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include <netinet/in.h>

namespace smartsock::net {

class Endpoint {
 public:
  Endpoint() = default;
  Endpoint(std::string_view ip, std::uint16_t port);

  /// Parses "a.b.c.d:port". Returns nullopt on malformed input.
  static std::optional<Endpoint> parse(std::string_view text);

  /// Builds from a kernel sockaddr (e.g. recvfrom peer address).
  static Endpoint from_sockaddr(const sockaddr_in& addr);

  /// Loopback shorthand.
  static Endpoint loopback(std::uint16_t port) { return Endpoint("127.0.0.1", port); }

  const std::string& ip() const { return ip_; }
  std::uint16_t port() const { return port_; }

  /// "a.b.c.d:port"
  std::string to_string() const;

  /// Kernel representation for bind/connect/sendto. Returns false if the IP
  /// string does not parse as dotted-quad IPv4.
  bool to_sockaddr(sockaddr_in& out) const;

  bool valid() const { return !ip_.empty(); }

  friend bool operator==(const Endpoint& a, const Endpoint& b) {
    return a.port_ == b.port_ && a.ip_ == b.ip_;
  }
  friend bool operator!=(const Endpoint& a, const Endpoint& b) { return !(a == b); }
  friend bool operator<(const Endpoint& a, const Endpoint& b) {
    if (a.ip_ != b.ip_) return a.ip_ < b.ip_;
    return a.port_ < b.port_;
  }

 private:
  std::string ip_;
  std::uint16_t port_ = 0;
};

}  // namespace smartsock::net
