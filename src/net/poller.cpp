#include "net/poller.h"

#include <poll.h>

namespace smartsock::net {

int poll_sockets(std::vector<PollEntry>& entries, util::Duration timeout) {
  std::vector<pollfd> fds;
  fds.reserve(entries.size());
  for (const PollEntry& entry : entries) {
    short events = 0;
    if (entry.want_read) events |= POLLIN;
    if (entry.want_write) events |= POLLOUT;
    fds.push_back(pollfd{entry.fd, events, 0});
  }
  int timeout_ms =
      static_cast<int>(std::chrono::duration_cast<std::chrono::milliseconds>(timeout).count());
  int ready = ::poll(fds.data(), fds.size(), timeout_ms);
  if (ready < 0) return -1;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    entries[i].readable = (fds[i].revents & POLLIN) != 0;
    entries[i].writable = (fds[i].revents & POLLOUT) != 0;
    entries[i].hangup = (fds[i].revents & (POLLHUP | POLLERR)) != 0;
  }
  return ready;
}

}  // namespace smartsock::net
