#include "net/poller.h"

#include <cerrno>

#include <poll.h>

namespace smartsock::net {

int poll_sockets(std::vector<PollEntry>& entries, util::Duration timeout) {
  std::vector<pollfd> fds;
  fds.reserve(entries.size());
  for (const PollEntry& entry : entries) {
    short events = 0;
    if (entry.want_read) events |= POLLIN;
    if (entry.want_write) events |= POLLOUT;
    fds.push_back(pollfd{entry.fd, events, 0});
  }

  // Retry on EINTR with the remaining budget, so a signal delivered to the
  // polling thread (profilers, timers) never surfaces as a spurious error.
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<std::chrono::steady_clock::duration>(timeout);
  int ready;
  for (;;) {
    auto remaining = deadline - std::chrono::steady_clock::now();
    if (remaining < std::chrono::steady_clock::duration::zero()) {
      remaining = std::chrono::steady_clock::duration::zero();
    }
    int timeout_ms = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(remaining).count());
    ready = ::poll(fds.data(), fds.size(), timeout_ms);
    if (ready >= 0) break;
    if (errno != EINTR) return -1;
    if (timeout_ms == 0) {  // budget exhausted mid-signal: report timeout
      ready = 0;
      break;
    }
  }

  for (std::size_t i = 0; i < entries.size(); ++i) {
    entries[i].readable = (fds[i].revents & POLLIN) != 0;
    entries[i].writable = (fds[i].revents & POLLOUT) != 0;
    // POLLNVAL (fd closed behind the poller's back) counts as a hangup: the
    // entry is dead and must be culled, not silently reported as idle.
    entries[i].hangup = (fds[i].revents & (POLLHUP | POLLERR | POLLNVAL)) != 0;
  }
  return ready;
}

}  // namespace smartsock::net
