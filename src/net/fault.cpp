#include "net/fault.h"

#include <cstdlib>

#include "obs/metrics.h"
#include "util/strings.h"

namespace smartsock::net {

namespace {

double get_prob(const util::Config& config, const char* key) {
  double v = config.get_double_or(key, 0.0);
  if (v < 0.0) return 0.0;
  if (v > 1.0) return 1.0;
  return v;
}

}  // namespace

FaultConfig FaultConfig::from_config(const util::Config& config) {
  FaultConfig out;
  out.seed = static_cast<std::uint64_t>(config.get_int_or("seed", 1));
  out.udp_drop_send = get_prob(config, "udp_drop_send");
  out.udp_drop_recv = get_prob(config, "udp_drop_recv");
  out.udp_duplicate = get_prob(config, "udp_duplicate");
  out.udp_truncate = get_prob(config, "udp_truncate");
  out.udp_corrupt = get_prob(config, "udp_corrupt");
  out.udp_delay_prob = get_prob(config, "udp_delay_prob");
  out.udp_delay = util::from_millis(config.get_double_or("udp_delay_ms", 5.0));
  out.udp_refuse_send = get_prob(config, "udp_refuse_send");
  out.tcp_connect_fail = get_prob(config, "tcp_connect_fail");
  out.tcp_reset_send = get_prob(config, "tcp_reset_send");
  out.tcp_reset_recv = get_prob(config, "tcp_reset_recv");
  out.tcp_truncate_send = get_prob(config, "tcp_truncate_send");
  return out;
}

std::optional<FaultConfig> FaultConfig::from_string(const std::string& text) {
  // Normalize "k=v,k=v" / "k=v k=v" into the line-oriented Config syntax.
  std::string lines;
  lines.reserve(text.size());
  for (char c : text) {
    lines += (c == ',' || c == ' ' || c == ';') ? '\n' : c;
  }
  util::Config config;
  if (!config.parse(lines)) return std::nullopt;
  return FaultConfig::from_config(config);
}

bool FaultConfig::any() const {
  return udp_drop_send > 0 || udp_drop_recv > 0 || udp_duplicate > 0 ||
         udp_truncate > 0 || udp_corrupt > 0 || udp_delay_prob > 0 ||
         udp_refuse_send > 0 || tcp_connect_fail > 0 || tcp_reset_send > 0 ||
         tcp_reset_recv > 0 || tcp_truncate_send > 0;
}

std::uint64_t FaultStats::total() const {
  return udp_dropped_send + udp_dropped_recv + udp_duplicated + udp_truncated +
         udp_corrupted + udp_delayed + udp_refused_send + tcp_connect_failed +
         tcp_reset_send + tcp_reset_recv + tcp_truncated_send;
}

FaultInjector::FaultInjector(FaultConfig config, util::Clock* clock)
    : config_(config), clock_(clock), rng_(config.seed ? config.seed : 1) {}

bool FaultInjector::roll(double p, std::atomic<std::uint64_t>& counter,
                         const char* metric) {
  if (p <= 0.0) return false;
  bool fire;
  {
    std::lock_guard<std::mutex> lock(rng_mu_);
    fire = rng_.chance(p);
  }
  if (fire) {
    counter.fetch_add(1, std::memory_order_relaxed);
    obs::MetricsRegistry::instance().counter(metric)->inc();
  }
  return fire;
}

bool FaultInjector::drop_udp_send() {
  return roll(config_.udp_drop_send, udp_dropped_send_,
              "fault_udp_dropped_send_total");
}

bool FaultInjector::drop_udp_recv() {
  return roll(config_.udp_drop_recv, udp_dropped_recv_,
              "fault_udp_dropped_recv_total");
}

bool FaultInjector::duplicate_udp() {
  return roll(config_.udp_duplicate, udp_duplicated_, "fault_udp_duplicated_total");
}

bool FaultInjector::mutate_udp(std::string& payload) {
  if (payload.empty()) return false;
  bool changed = false;
  if (roll(config_.udp_truncate, udp_truncated_, "fault_udp_truncated_total")) {
    std::size_t keep;
    {
      std::lock_guard<std::mutex> lock(rng_mu_);
      keep = static_cast<std::size_t>(
          rng_.uniform_int(0, static_cast<std::int64_t>(payload.size()) - 1));
    }
    payload.resize(keep);
    changed = true;
  }
  if (!payload.empty() &&
      roll(config_.udp_corrupt, udp_corrupted_, "fault_udp_corrupted_total")) {
    std::lock_guard<std::mutex> lock(rng_mu_);
    // Flip 1-4 random bytes; enough to break any header or checksum.
    int flips = static_cast<int>(rng_.uniform_int(1, 4));
    for (int i = 0; i < flips; ++i) {
      std::size_t at = static_cast<std::size_t>(
          rng_.uniform_int(0, static_cast<std::int64_t>(payload.size()) - 1));
      payload[at] = static_cast<char>(payload[at] ^
                                      static_cast<char>(rng_.uniform_int(1, 255)));
    }
    changed = true;
  }
  return changed;
}

void FaultInjector::maybe_delay_udp() {
  if (roll(config_.udp_delay_prob, udp_delayed_, "fault_udp_delayed_total")) {
    clock_->sleep_for(config_.udp_delay);
  }
}

bool FaultInjector::refuse_udp_send(const std::string& peer) {
  {
    std::lock_guard<std::mutex> lock(refuse_mu_);
    for (const std::string& dead : refused_endpoints_) {
      if (dead == peer) {
        udp_refused_send_.fetch_add(1, std::memory_order_relaxed);
        obs::MetricsRegistry::instance().counter("fault_udp_refused_send_total")->inc();
        return true;
      }
    }
  }
  return roll(config_.udp_refuse_send, udp_refused_send_,
              "fault_udp_refused_send_total");
}

void FaultInjector::set_udp_refuse_endpoint(const std::string& peer, bool on) {
  std::lock_guard<std::mutex> lock(refuse_mu_);
  for (auto it = refused_endpoints_.begin(); it != refused_endpoints_.end(); ++it) {
    if (*it == peer) {
      if (!on) refused_endpoints_.erase(it);
      return;
    }
  }
  if (on) refused_endpoints_.push_back(peer);
}

bool FaultInjector::fail_connect() {
  return roll(config_.tcp_connect_fail, tcp_connect_failed_,
              "fault_tcp_connect_failed_total");
}

bool FaultInjector::reset_send() {
  return roll(config_.tcp_reset_send, tcp_reset_send_, "fault_tcp_reset_send_total");
}

bool FaultInjector::reset_recv() {
  return roll(config_.tcp_reset_recv, tcp_reset_recv_, "fault_tcp_reset_recv_total");
}

std::size_t FaultInjector::truncate_send(std::size_t size) {
  if (size == 0 ||
      !roll(config_.tcp_truncate_send, tcp_truncated_send_,
            "fault_tcp_truncated_send_total")) {
    return size;
  }
  std::lock_guard<std::mutex> lock(rng_mu_);
  return static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(size) - 1));
}

FaultStats FaultInjector::stats() const {
  FaultStats s;
  s.udp_dropped_send = udp_dropped_send_.load(std::memory_order_relaxed);
  s.udp_dropped_recv = udp_dropped_recv_.load(std::memory_order_relaxed);
  s.udp_duplicated = udp_duplicated_.load(std::memory_order_relaxed);
  s.udp_truncated = udp_truncated_.load(std::memory_order_relaxed);
  s.udp_corrupted = udp_corrupted_.load(std::memory_order_relaxed);
  s.udp_delayed = udp_delayed_.load(std::memory_order_relaxed);
  s.udp_refused_send = udp_refused_send_.load(std::memory_order_relaxed);
  s.tcp_connect_failed = tcp_connect_failed_.load(std::memory_order_relaxed);
  s.tcp_reset_send = tcp_reset_send_.load(std::memory_order_relaxed);
  s.tcp_reset_recv = tcp_reset_recv_.load(std::memory_order_relaxed);
  s.tcp_truncated_send = tcp_truncated_send_.load(std::memory_order_relaxed);
  return s;
}

namespace {
std::atomic<FaultInjector*> g_global{nullptr};
std::once_flag g_env_once;
}  // namespace

FaultInjector* FaultInjector::global() {
  std::call_once(g_env_once, [] {
    const char* env = std::getenv("SMARTSOCK_FAULTS");
    if (env == nullptr || *env == '\0') return;
    auto config = FaultConfig::from_string(env);
    if (config && config->any()) {
      // Intentionally leaked: process-lifetime, like the metrics registry.
      g_global.store(new FaultInjector(*config), std::memory_order_release);
    }
  });
  return g_global.load(std::memory_order_acquire);
}

FaultInjector* FaultInjector::install_global(FaultInjector* injector) {
  // Make sure the env fallback cannot race in later and clobber an
  // explicitly installed injector.
  std::call_once(g_env_once, [] {});
  return g_global.exchange(injector, std::memory_order_acq_rel);
}

}  // namespace smartsock::net
