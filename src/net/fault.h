// Deterministic fault injection for the socket stack (ISSUE 3 tentpole,
// part 1).
//
// Chaos harness for everything above the sockets: a FaultInjector, seeded
// and therefore reproducible, sits inside UdpSocket/TcpSocket and — at
// configured probabilities — drops, delays, duplicates, truncates or
// corrupts datagrams, truncates TCP writes mid-frame, force-resets
// connections and fails connect() attempts. The retry/backoff, circuit
// breaker, staleness degradation and quarantine logic in the layers above
// are all exercised against these faults in tests/failure_test.cpp.
//
// Batched I/O (UdpSocket::receive_batch/send_batch) draws every decision
// per-datagram in batch order, and on the send side before any syscall, so
// the mmsg fast path and the single-syscall fallback consume the seeded RNG
// identically — a chaos run reproduces regardless of which path ran.
//
// Installation, in precedence order:
//   1. per-socket:  socket.set_fault_injector(&injector)  (tests)
//   2. process-global: FaultInjector::install_global(&injector), or the
//      SMARTSOCK_FAULTS environment variable parsed on first use, e.g.
//        SMARTSOCK_FAULTS="seed=7,udp_drop_send=0.2,tcp_reset_send=0.05"
// No injector installed (the default) costs one relaxed atomic load per op.
//
// Injected delays sleep on a util::Clock, so tests substitute a
// sim::VirtualClock and advance time without real sleeping.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "util/clock.h"
#include "util/config.h"
#include "util/rng.h"

namespace smartsock::net {

/// Per-fault probabilities in [0, 1]. Zero (the default) disables a fault.
struct FaultConfig {
  std::uint64_t seed = 1;

  // UDP datagram faults.
  double udp_drop_send = 0.0;   // swallow outgoing datagram (reported sent)
  double udp_drop_recv = 0.0;   // swallow incoming datagram (reported timeout)
  double udp_duplicate = 0.0;   // send the datagram twice
  double udp_truncate = 0.0;    // cut the payload at a random prefix
  double udp_corrupt = 0.0;     // flip random bytes in the payload
  double udp_delay_prob = 0.0;  // sleep udp_delay before sending
  util::Duration udp_delay = std::chrono::milliseconds(5);

  /// Hard UDP send failure: sendto() fails with ECONNREFUSED as if an ICMP
  /// port-unreachable came back from a dead replica (ISSUE 8).
  double udp_refuse_send = 0.0;

  // TCP stream faults.
  double tcp_connect_fail = 0.0;  // connect() refuses immediately
  double tcp_reset_send = 0.0;    // close + ECONNRESET before writing
  double tcp_reset_recv = 0.0;    // close + ECONNRESET before reading
  double tcp_truncate_send = 0.0; // write a random prefix, then close

  /// Reads faults from key=value pairs named exactly like the fields above
  /// (unknown keys ignored, so one config file can carry other sections).
  static FaultConfig from_config(const util::Config& config);

  /// Parses "k=v,k=v,..." (commas or whitespace between pairs).
  static std::optional<FaultConfig> from_string(const std::string& text);

  /// True if any probability is non-zero.
  bool any() const;
};

/// Counts of injected faults, readable while injection runs.
struct FaultStats {
  std::uint64_t udp_dropped_send = 0;
  std::uint64_t udp_dropped_recv = 0;
  std::uint64_t udp_duplicated = 0;
  std::uint64_t udp_truncated = 0;
  std::uint64_t udp_corrupted = 0;
  std::uint64_t udp_delayed = 0;
  std::uint64_t udp_refused_send = 0;
  std::uint64_t tcp_connect_failed = 0;
  std::uint64_t tcp_reset_send = 0;
  std::uint64_t tcp_reset_recv = 0;
  std::uint64_t tcp_truncated_send = 0;

  std::uint64_t total() const;
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultConfig config,
                         util::Clock* clock = &util::SteadyClock::instance());

  // --- decisions, called from the socket hot paths (thread-safe) ----------
  bool drop_udp_send();
  bool drop_udp_recv();
  bool duplicate_udp();
  /// Applies truncation/corruption in place; true if the payload changed.
  bool mutate_udp(std::string& payload);
  /// Sleeps the configured delay on the injector's clock when it fires.
  void maybe_delay_udp();
  /// Whether a send to `peer` ("ip:port") must fail hard with ECONNREFUSED —
  /// either the peer is on the kill list (replica-kill chaos, ISSUE 8) or
  /// the udp_refuse_send probability fires.
  bool refuse_udp_send(const std::string& peer);

  /// Replica-kill hook: while `on`, every UDP send to `peer` fails with
  /// ECONNREFUSED — the deterministic stand-in for an ICMP port-unreachable
  /// from a SIGKILLed wizard. Thread-safe; toggled live mid-storm.
  void set_udp_refuse_endpoint(const std::string& peer, bool on);

  bool fail_connect();
  bool reset_send();
  bool reset_recv();
  /// Returns the byte count to actually write (< size when truncating).
  std::size_t truncate_send(std::size_t size);

  FaultStats stats() const;
  const FaultConfig& config() const { return config_; }

  // --- process-global installation ---------------------------------------
  /// The active global injector: an installed one, else the injector lazily
  /// built from SMARTSOCK_FAULTS (nullptr when the variable is unset/empty).
  static FaultInjector* global();

  /// Replaces the global injector; returns the previous one. Passing
  /// nullptr disables global injection (the env fallback stays consumed).
  static FaultInjector* install_global(FaultInjector* injector);

 private:
  bool roll(double p, std::atomic<std::uint64_t>& counter, const char* metric);

  FaultConfig config_;
  util::Clock* clock_;
  std::mutex rng_mu_;
  util::Rng rng_;

  std::atomic<std::uint64_t> udp_dropped_send_{0};
  std::atomic<std::uint64_t> udp_dropped_recv_{0};
  std::atomic<std::uint64_t> udp_duplicated_{0};
  std::atomic<std::uint64_t> udp_truncated_{0};
  std::atomic<std::uint64_t> udp_corrupted_{0};
  std::atomic<std::uint64_t> udp_delayed_{0};
  std::atomic<std::uint64_t> udp_refused_send_{0};
  std::atomic<std::uint64_t> tcp_connect_failed_{0};

  std::mutex refuse_mu_;
  std::vector<std::string> refused_endpoints_;
  std::atomic<std::uint64_t> tcp_reset_send_{0};
  std::atomic<std::uint64_t> tcp_reset_recv_{0};
  std::atomic<std::uint64_t> tcp_truncated_send_{0};
};

/// RAII global installation for tests: installs on construction, restores
/// the previous global on destruction.
class ScopedGlobalFaults {
 public:
  explicit ScopedGlobalFaults(FaultInjector& injector)
      : previous_(FaultInjector::install_global(&injector)) {}
  ~ScopedGlobalFaults() { FaultInjector::install_global(previous_); }

  ScopedGlobalFaults(const ScopedGlobalFaults&) = delete;
  ScopedGlobalFaults& operator=(const ScopedGlobalFaults&) = delete;

 private:
  FaultInjector* previous_;
};

}  // namespace smartsock::net
