#include "net/udp_socket.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>

#include "net/fault.h"

namespace smartsock::net {

std::optional<UdpSocket> UdpSocket::create() {
  int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) return std::nullopt;
  UdpSocket sock;
  static_cast<Socket&>(sock) = Socket(fd);
  return sock;
}

std::optional<UdpSocket> UdpSocket::bind(const Endpoint& endpoint) {
  auto sock = create();
  if (!sock) return std::nullopt;
  sockaddr_in addr{};
  if (!endpoint.to_sockaddr(addr)) return std::nullopt;
  if (::bind(sock->fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return std::nullopt;
  }
  return sock;
}

IoResult UdpSocket::send_to(std::string_view payload, const Endpoint& peer) {
  sockaddr_in addr{};
  if (!peer.to_sockaddr(addr)) return IoResult{IoStatus::kError, 0, EINVAL};

  bool duplicate = false;
  std::string mutated;  // storage when the injector rewrites the payload
  if (FaultInjector* fault = active_fault_injector()) {
    if (fault->refuse_udp_send(peer.to_string())) {
      // The replica-kill hook: fail exactly like an ICMP port-unreachable
      // bounced off a dead peer.
      return IoResult{IoStatus::kError, 0, ECONNREFUSED};
    }
    if (fault->drop_udp_send()) {
      // Swallowed by the "network": the caller sees a normal send.
      return IoResult{IoStatus::kOk, payload.size(), 0};
    }
    fault->maybe_delay_udp();
    mutated.assign(payload);
    if (fault->mutate_udp(mutated)) payload = mutated;
    duplicate = fault->duplicate_udp();
  }

  ssize_t n = ::sendto(fd_, payload.data(), payload.size(), 0,
                       reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (n < 0) return IoResult{IoStatus::kError, 0, errno};
  if (duplicate) {
    ::sendto(fd_, payload.data(), payload.size(), 0,
             reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  }
  if (counter_) counter_->add_sent(static_cast<std::uint64_t>(n));
  return IoResult{IoStatus::kOk, static_cast<std::size_t>(n), 0};
}

IoResult UdpSocket::receive_impl(int flags, std::string& payload, Endpoint& peer,
                                 std::size_t max_size) {
  payload.resize(max_size);
  sockaddr_in addr{};
  socklen_t addr_len = sizeof(addr);
  ssize_t n = ::recvfrom(fd_, payload.data(), payload.size(), flags,
                         reinterpret_cast<sockaddr*>(&addr), &addr_len);
  if (n < 0) {
    payload.clear();
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoResult{IoStatus::kTimeout, 0, errno};
    return IoResult{IoStatus::kError, 0, errno};
  }
  payload.resize(static_cast<std::size_t>(n));
  peer = Endpoint::from_sockaddr(addr);
  if (FaultInjector* fault = active_fault_injector()) {
    if (fault->drop_udp_recv()) {
      // Lost on the wire as far as the caller can tell.
      payload.clear();
      return IoResult{IoStatus::kTimeout, 0, EAGAIN};
    }
  }
  if (counter_) counter_->add_received(static_cast<std::uint64_t>(n));
  return IoResult{IoStatus::kOk, static_cast<std::size_t>(n), 0};
}

IoResult UdpSocket::receive_from(std::string& payload, Endpoint& peer, std::size_t max_size) {
  return receive_impl(0, payload, peer, max_size);
}

IoResult UdpSocket::try_receive_from(std::string& payload, Endpoint& peer,
                                     std::size_t max_size) {
  return receive_impl(MSG_DONTWAIT, payload, peer, max_size);
}

std::optional<Datagram> UdpSocket::receive(util::Duration timeout, std::size_t max_size,
                                           IoResult* result_out) {
  set_receive_timeout(timeout);
  Datagram dg;
  IoResult result = receive_from(dg.payload, dg.peer, max_size);
  if (result_out) *result_out = result;
  if (!result.ok()) return std::nullopt;
  return dg;
}

}  // namespace smartsock::net
