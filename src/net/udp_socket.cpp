#include "net/udp_socket.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>

namespace smartsock::net {

std::optional<UdpSocket> UdpSocket::create() {
  int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) return std::nullopt;
  UdpSocket sock;
  static_cast<Socket&>(sock) = Socket(fd);
  return sock;
}

std::optional<UdpSocket> UdpSocket::bind(const Endpoint& endpoint) {
  auto sock = create();
  if (!sock) return std::nullopt;
  sockaddr_in addr{};
  if (!endpoint.to_sockaddr(addr)) return std::nullopt;
  if (::bind(sock->fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return std::nullopt;
  }
  return sock;
}

IoResult UdpSocket::send_to(std::string_view payload, const Endpoint& peer) {
  sockaddr_in addr{};
  if (!peer.to_sockaddr(addr)) return IoResult{IoStatus::kError, 0, EINVAL};
  ssize_t n = ::sendto(fd_, payload.data(), payload.size(), 0,
                       reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (n < 0) return IoResult{IoStatus::kError, 0, errno};
  if (counter_) counter_->add_sent(static_cast<std::uint64_t>(n));
  return IoResult{IoStatus::kOk, static_cast<std::size_t>(n), 0};
}

IoResult UdpSocket::receive_from(std::string& payload, Endpoint& peer, std::size_t max_size) {
  payload.resize(max_size);
  sockaddr_in addr{};
  socklen_t addr_len = sizeof(addr);
  ssize_t n = ::recvfrom(fd_, payload.data(), payload.size(), 0,
                         reinterpret_cast<sockaddr*>(&addr), &addr_len);
  if (n < 0) {
    payload.clear();
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoResult{IoStatus::kTimeout, 0, errno};
    return IoResult{IoStatus::kError, 0, errno};
  }
  payload.resize(static_cast<std::size_t>(n));
  peer = Endpoint::from_sockaddr(addr);
  if (counter_) counter_->add_received(static_cast<std::uint64_t>(n));
  return IoResult{IoStatus::kOk, static_cast<std::size_t>(n), 0};
}

std::optional<Datagram> UdpSocket::receive(util::Duration timeout, std::size_t max_size) {
  set_receive_timeout(timeout);
  Datagram dg;
  IoResult result = receive_from(dg.payload, dg.peer, max_size);
  if (!result.ok()) return std::nullopt;
  return dg;
}

}  // namespace smartsock::net
