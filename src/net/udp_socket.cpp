#include "net/udp_socket.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/uio.h>

#include "net/fault.h"

namespace smartsock::net {
namespace {

// One decision record per outgoing datagram, drawn before any syscall so the
// mmsg path and the loop fallback consume the fault RNG in the same order.
struct SendPlan {
  enum class Action { kSend, kDropSilently, kRefuse, kUnroutable };
  Action action = Action::kSend;
  bool duplicate = false;
  const std::string* payload = nullptr;  // original or mutated storage
  sockaddr_in addr{};
};

}  // namespace

std::optional<UdpSocket> UdpSocket::create() {
  int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) return std::nullopt;
  UdpSocket sock;
  static_cast<Socket&>(sock) = Socket(fd);
  return sock;
}

std::optional<UdpSocket> UdpSocket::bind(const Endpoint& endpoint) {
  return bind(endpoint, UdpBindOptions{});
}

std::optional<UdpSocket> UdpSocket::bind(const Endpoint& endpoint,
                                         const UdpBindOptions& options) {
  auto sock = create();
  if (!sock) return std::nullopt;
  sockaddr_in addr{};
  if (!endpoint.to_sockaddr(addr)) return std::nullopt;
  if (options.reuse_port && !sock->set_reuse_port(true)) return std::nullopt;
  if (options.rcvbuf_bytes > 0) sock->set_receive_buffer(options.rcvbuf_bytes);
  if (options.track_kernel_drops) {
#ifdef SO_RXQ_OVFL
    int on = 1;
    if (::setsockopt(sock->fd(), SOL_SOCKET, SO_RXQ_OVFL, &on, sizeof(on)) == 0) {
      sock->rxq_tracking_ = true;
    }
#endif
  }
  if (::bind(sock->fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return std::nullopt;
  }
  return sock;
}

IoResult UdpSocket::send_to(std::string_view payload, const Endpoint& peer) {
  sockaddr_in addr{};
  if (!peer.to_sockaddr(addr)) return IoResult{IoStatus::kError, 0, EINVAL};

  bool duplicate = false;
  std::string mutated;  // storage when the injector rewrites the payload
  if (FaultInjector* fault = active_fault_injector()) {
    if (fault->refuse_udp_send(peer.to_string())) {
      // The replica-kill hook: fail exactly like an ICMP port-unreachable
      // bounced off a dead peer.
      return IoResult{IoStatus::kError, 0, ECONNREFUSED};
    }
    if (fault->drop_udp_send()) {
      // Swallowed by the "network": the caller sees a normal send.
      return IoResult{IoStatus::kOk, payload.size(), 0};
    }
    fault->maybe_delay_udp();
    mutated.assign(payload);
    if (fault->mutate_udp(mutated)) payload = mutated;
    duplicate = fault->duplicate_udp();
  }

  ssize_t n = ::sendto(fd_, payload.data(), payload.size(), 0,
                       reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (n < 0) return IoResult{IoStatus::kError, 0, errno};
  if (duplicate) {
    ::sendto(fd_, payload.data(), payload.size(), 0,
             reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  }
  if (counter_) counter_->add_sent(static_cast<std::uint64_t>(n));
  return IoResult{IoStatus::kOk, static_cast<std::size_t>(n), 0};
}

IoResult UdpSocket::receive_impl(int flags, std::string& payload, Endpoint& peer,
                                 std::size_t max_size) {
  payload.resize(max_size);
  sockaddr_in addr{};
  socklen_t addr_len = sizeof(addr);
  ssize_t n = ::recvfrom(fd_, payload.data(), payload.size(), flags,
                         reinterpret_cast<sockaddr*>(&addr), &addr_len);
  if (n < 0) {
    payload.clear();
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoResult{IoStatus::kTimeout, 0, errno};
    return IoResult{IoStatus::kError, 0, errno};
  }
  payload.resize(static_cast<std::size_t>(n));
  peer = Endpoint::from_sockaddr(addr);
  if (FaultInjector* fault = active_fault_injector()) {
    if (fault->drop_udp_recv()) {
      // Lost on the wire as far as the caller can tell.
      payload.clear();
      return IoResult{IoStatus::kTimeout, 0, EAGAIN};
    }
  }
  if (counter_) counter_->add_received(static_cast<std::uint64_t>(n));
  return IoResult{IoStatus::kOk, static_cast<std::size_t>(n), 0};
}

IoResult UdpSocket::receive_from(std::string& payload, Endpoint& peer, std::size_t max_size) {
  return receive_impl(0, payload, peer, max_size);
}

IoResult UdpSocket::try_receive_from(std::string& payload, Endpoint& peer,
                                     std::size_t max_size) {
  return receive_impl(MSG_DONTWAIT, payload, peer, max_size);
}

std::optional<Datagram> UdpSocket::receive(util::Duration timeout, std::size_t max_size,
                                           IoResult* result_out) {
  set_receive_timeout(timeout);
  Datagram dg;
  IoResult result = receive_from(dg.payload, dg.peer, max_size);
  if (result_out) *result_out = result;
  if (!result.ok()) return std::nullopt;
  return dg;
}

void UdpSocket::note_rxq_counter(std::uint32_t cumulative) {
  // SO_RXQ_OVFL delivers the kernel's cumulative per-socket drop count with
  // each datagram; unsigned subtraction makes the delta wrap-safe.
  std::uint32_t delta = cumulative - last_rxq_;
  last_rxq_ = cumulative;
  kernel_drops_ += delta;
}

std::size_t UdpSocket::receive_batch(std::vector<Datagram>& batch, std::size_t max_batch,
                                     std::size_t max_size, IoResult* result_out) {
  return receive_batch_impl(/*wait_for_first=*/true, batch, max_batch, max_size, result_out);
}

std::size_t UdpSocket::try_receive_batch(std::vector<Datagram>& batch, std::size_t max_batch,
                                         std::size_t max_size, IoResult* result_out) {
  return receive_batch_impl(/*wait_for_first=*/false, batch, max_batch, max_size, result_out);
}

std::size_t UdpSocket::receive_batch_impl(bool wait_for_first, std::vector<Datagram>& batch,
                                          std::size_t max_batch, std::size_t max_size,
                                          IoResult* result_out) {
  if (result_out) *result_out = IoResult{IoStatus::kTimeout, 0, EAGAIN};
  if (max_batch == 0 || fd_ < 0) {
    batch.clear();
    if (result_out && fd_ < 0) *result_out = IoResult{IoStatus::kError, 0, EBADF};
    return 0;
  }
  if (batch.size() != max_batch) batch.resize(max_batch);

  std::size_t received = 0;
  std::size_t received_bytes = 0;

#if defined(__linux__) && defined(MSG_WAITFORONE)
  if (!force_fallback_) {
    // Scratch arrays sized per call; the Datagram payloads themselves are
    // the receive buffers, so steady-state reuse allocates nothing.
    std::vector<mmsghdr> msgs(max_batch);
    std::vector<iovec> iovs(max_batch);
    std::vector<sockaddr_in> addrs(max_batch);
    // Room for the SO_RXQ_OVFL drop counter cmsg on every message.
    constexpr std::size_t kCmsgSpace = CMSG_SPACE(sizeof(std::uint32_t));
    std::vector<char> cmsg_buf(rxq_tracking_ ? max_batch * kCmsgSpace : 0);
    for (std::size_t i = 0; i < max_batch; ++i) {
      batch[i].payload.resize(max_size);
      iovs[i].iov_base = batch[i].payload.data();
      iovs[i].iov_len = max_size;
      std::memset(&msgs[i], 0, sizeof(msgs[i]));
      msgs[i].msg_hdr.msg_name = &addrs[i];
      msgs[i].msg_hdr.msg_namelen = sizeof(addrs[i]);
      msgs[i].msg_hdr.msg_iov = &iovs[i];
      msgs[i].msg_hdr.msg_iovlen = 1;
      if (rxq_tracking_) {
        msgs[i].msg_hdr.msg_control = cmsg_buf.data() + i * kCmsgSpace;
        msgs[i].msg_hdr.msg_controllen = kCmsgSpace;
      }
    }
    // MSG_WAITFORONE blocks for the first datagram under SO_RCVTIMEO, then
    // flips to non-blocking for the rest of the batch — the exact semantics
    // of "wait for traffic, drain the burst" in one syscall.
    int flags = wait_for_first ? MSG_WAITFORONE : MSG_DONTWAIT;
    int n = ::recvmmsg(fd_, msgs.data(), static_cast<unsigned>(max_batch), flags, nullptr);
    if (n < 0) {
      batch.clear();
      if (errno != EAGAIN && errno != EWOULDBLOCK && result_out) {
        *result_out = IoResult{IoStatus::kError, 0, errno};
      }
      return 0;
    }
    FaultInjector* fault = active_fault_injector();
    for (int i = 0; i < n; ++i) {
      if (rxq_tracking_) {
        for (cmsghdr* cm = CMSG_FIRSTHDR(&msgs[i].msg_hdr); cm != nullptr;
             cm = CMSG_NXTHDR(&msgs[i].msg_hdr, cm)) {
#ifdef SO_RXQ_OVFL
          if (cm->cmsg_level == SOL_SOCKET && cm->cmsg_type == SO_RXQ_OVFL) {
            std::uint32_t dropped = 0;
            std::memcpy(&dropped, CMSG_DATA(cm), sizeof(dropped));
            note_rxq_counter(dropped);
          }
#endif
        }
      }
      // Per-datagram fault decision, in arrival order: a dropped datagram
      // vanishes from the batch exactly as it would from a single receive.
      if (fault != nullptr && fault->drop_udp_recv()) continue;
      if (received != static_cast<std::size_t>(i)) {
        batch[received].payload.swap(batch[i].payload);
      }
      batch[received].payload.resize(msgs[i].msg_len);
      batch[received].peer = Endpoint::from_sockaddr(addrs[i]);
      received_bytes += msgs[i].msg_len;
      ++received;
    }
    batch.resize(received);
    if (counter_ && received_bytes > 0) counter_->add_received(received_bytes);
    if (result_out && received > 0) {
      *result_out = IoResult{IoStatus::kOk, received_bytes, 0};
    }
    return received;
  }
#endif

  // Portable fallback: one syscall per datagram — blocking (SO_RCVTIMEO)
  // for the first, MSG_DONTWAIT to drain the rest. Fault decisions apply
  // per-datagram in arrival order, mirroring the mmsg path.
  FaultInjector* fault = active_fault_injector();
  IoResult last{};
  bool got_first = false;
  while (received < max_batch) {
    int flags = (!got_first && wait_for_first) ? 0 : MSG_DONTWAIT;
    Datagram& slot = batch[received];
    slot.payload.resize(max_size);
    sockaddr_in addr{};
    socklen_t addr_len = sizeof(addr);
    ssize_t n = ::recvfrom(fd_, slot.payload.data(), slot.payload.size(), flags,
                           reinterpret_cast<sockaddr*>(&addr), &addr_len);
    if (n < 0) {
      if (errno != EAGAIN && errno != EWOULDBLOCK) {
        last = IoResult{IoStatus::kError, 0, errno};
      }
      break;
    }
    got_first = true;  // kernel delivered a datagram, even if chaos eats it
    if (fault != nullptr && fault->drop_udp_recv()) continue;
    slot.payload.resize(static_cast<std::size_t>(n));
    slot.peer = Endpoint::from_sockaddr(addr);
    received_bytes += static_cast<std::size_t>(n);
    ++received;
  }
  batch.resize(received);
  if (result_out) {
    if (received > 0) {
      *result_out = IoResult{IoStatus::kOk, received_bytes, 0};
    } else if (last.status == IoStatus::kError) {
      *result_out = last;
    }
  }
  return received;
}

std::size_t UdpSocket::send_batch(const std::vector<Datagram>& batch, IoResult* result_out) {
  if (result_out) *result_out = IoResult{IoStatus::kOk, 0, 0};
  if (batch.empty()) return 0;
  if (fd_ < 0) {
    if (result_out) *result_out = IoResult{IoStatus::kError, 0, EBADF};
    return 0;
  }

  // Plan phase: every fault decision is drawn here, per-datagram in batch
  // order, before any syscall — so the mmsg path and the loop fallback see
  // identical RNG streams and a chaos run reproduces on either.
  FaultInjector* fault = active_fault_injector();
  std::vector<SendPlan> plans(batch.size());
  std::vector<std::string> mutated;  // stable storage for rewritten payloads
  mutated.reserve(batch.size());
  int first_error = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    SendPlan& plan = plans[i];
    plan.payload = &batch[i].payload;
    if (!batch[i].peer.to_sockaddr(plan.addr)) {
      plan.action = SendPlan::Action::kUnroutable;
      if (first_error == 0) first_error = EINVAL;
      continue;
    }
    if (fault != nullptr) {
      if (fault->refuse_udp_send(batch[i].peer.to_string())) {
        plan.action = SendPlan::Action::kRefuse;
        if (first_error == 0) first_error = ECONNREFUSED;
        continue;
      }
      if (fault->drop_udp_send()) {
        plan.action = SendPlan::Action::kDropSilently;
        continue;
      }
      fault->maybe_delay_udp();
      std::string storage(batch[i].payload);
      if (fault->mutate_udp(storage)) {
        mutated.push_back(std::move(storage));
        plan.payload = &mutated.back();
      }
      plan.duplicate = fault->duplicate_udp();
    }
  }

  // Wire list: surviving datagrams, duplicates included.
  std::vector<const SendPlan*> wire;
  wire.reserve(plans.size());
  std::size_t reported_sent = 0;
  std::size_t reported_bytes = 0;
  for (const SendPlan& plan : plans) {
    if (plan.action == SendPlan::Action::kDropSilently) {
      // Swallowed by the "network": counted as sent toward the caller.
      ++reported_sent;
      reported_bytes += plan.payload->size();
      continue;
    }
    if (plan.action != SendPlan::Action::kSend) continue;
    wire.push_back(&plan);
    if (plan.duplicate) wire.push_back(&plan);
  }

  std::size_t wired = 0;  // entries handed to the kernel
#if defined(__linux__) && defined(MSG_WAITFORONE)
  if (!force_fallback_ && !wire.empty()) {
    std::vector<mmsghdr> msgs(wire.size());
    std::vector<iovec> iovs(wire.size());
    for (std::size_t i = 0; i < wire.size(); ++i) {
      iovs[i].iov_base = const_cast<char*>(wire[i]->payload->data());
      iovs[i].iov_len = wire[i]->payload->size();
      std::memset(&msgs[i], 0, sizeof(msgs[i]));
      msgs[i].msg_hdr.msg_name = const_cast<sockaddr_in*>(&wire[i]->addr);
      msgs[i].msg_hdr.msg_namelen = sizeof(wire[i]->addr);
      msgs[i].msg_hdr.msg_iov = &iovs[i];
      msgs[i].msg_hdr.msg_iovlen = 1;
    }
    while (wired < wire.size()) {
      int n = ::sendmmsg(fd_, msgs.data() + wired,
                         static_cast<unsigned>(wire.size() - wired), 0);
      if (n < 0) {
        if (first_error == 0) first_error = errno;
        break;
      }
      wired += static_cast<std::size_t>(n);
    }
  }
#else
  (void)0;
#endif
#if defined(__linux__) && defined(MSG_WAITFORONE)
  if (force_fallback_)
#endif
  {
    for (; wired < wire.size(); ++wired) {
      const SendPlan* plan = wire[wired];
      ssize_t n = ::sendto(fd_, plan->payload->data(), plan->payload->size(), 0,
                           reinterpret_cast<const sockaddr*>(&plan->addr), sizeof(plan->addr));
      if (n < 0) {
        if (first_error == 0) first_error = errno;
        break;
      }
    }
  }

  // Credit each *original* datagram whose wire entries all went out.
  std::size_t consumed = 0;
  for (const SendPlan& plan : plans) {
    if (plan.action != SendPlan::Action::kSend) continue;
    std::size_t needs = plan.duplicate ? 2 : 1;
    if (consumed + needs > wired) break;
    consumed += needs;
    ++reported_sent;
    reported_bytes += plan.payload->size();
  }
  if (counter_ && reported_bytes > 0) counter_->add_sent(reported_bytes);
  if (result_out) {
    if (first_error != 0) {
      *result_out = IoResult{IoStatus::kError, reported_bytes, first_error};
    } else {
      *result_out = IoResult{IoStatus::kOk, reported_bytes, 0};
    }
  }
  return reported_sent;
}

}  // namespace smartsock::net
