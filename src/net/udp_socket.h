// UDP datagram socket.
//
// UDP carries the low-overhead paths of the system: probe status reports
// (§3.2.1), wizard request/reply (§3.6.1) and the one-way bandwidth probes
// (§3.3.2) — the thesis picks UDP precisely to keep probing overhead small.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "net/socket.h"

namespace smartsock::net {

struct Datagram {
  std::string payload;
  Endpoint peer;
};

class UdpSocket : public Socket {
 public:
  UdpSocket() = default;

  /// Creates an unbound UDP socket.
  static std::optional<UdpSocket> create();

  /// Creates and binds; port 0 requests an ephemeral port (read back with
  /// local_endpoint()).
  static std::optional<UdpSocket> bind(const Endpoint& endpoint);

  /// Sends one datagram; returns bytes sent, accounting to the counter.
  IoResult send_to(std::string_view payload, const Endpoint& peer);

  /// Receives one datagram of up to max_size bytes. Honors SO_RCVTIMEO.
  IoResult receive_from(std::string& payload, Endpoint& peer, std::size_t max_size = 64 * 1024);

  /// Non-blocking receive (MSG_DONTWAIT): returns kTimeout immediately when
  /// the socket buffer is empty, regardless of SO_RCVTIMEO. Lets an ingest
  /// loop drain a burst of datagrams in one wakeup, resizing `payload` in
  /// place so a reused string stops allocating after the first call.
  IoResult try_receive_from(std::string& payload, Endpoint& peer,
                            std::size_t max_size = 64 * 1024);

  /// Convenience: receive with timeout applied for just this call. When
  /// `result_out` is non-null it carries the full IoResult — status and
  /// errno — so failover-aware callers (ISSUE 8) can tell a hard peer error
  /// (ECONNREFUSED from a dead replica) from an ordinary timeout.
  std::optional<Datagram> receive(util::Duration timeout, std::size_t max_size = 64 * 1024,
                                  IoResult* result_out = nullptr);

 private:
  IoResult receive_impl(int flags, std::string& payload, Endpoint& peer,
                        std::size_t max_size);
};

}  // namespace smartsock::net
