// UDP datagram socket.
//
// UDP carries the low-overhead paths of the system: probe status reports
// (§3.2.1), wizard request/reply (§3.6.1) and the one-way bandwidth probes
// (§3.3.2) — the thesis picks UDP precisely to keep probing overhead small.
//
// The batched interface (receive_batch/send_batch) moves whole bursts per
// syscall via recvmmsg/sendmmsg on Linux, with a portable single-syscall
// fallback, and is the substrate of the SO_REUSEPORT ingest shard groups
// (ROADMAP item 2). Fault injection applies per-datagram inside a batch so
// the chaos suites bite identically on the fast path.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/socket.h"

namespace smartsock::net {

struct Datagram {
  std::string payload;
  Endpoint peer;
};

/// Options applied between socket() and bind() for ingest sockets.
struct UdpBindOptions {
  /// Join (or found) an SO_REUSEPORT group: every socket bound with this
  /// flag to the same address shares the port, and the kernel hashes each
  /// sender's 4-tuple to pick the receiving socket. One sender socket
  /// therefore always lands on the same shard.
  bool reuse_port = false;

  /// SO_RCVBUF sizing; 0 keeps the kernel default. Bursts beyond the buffer
  /// are dropped by the kernel — visible via track_kernel_drops.
  int rcvbuf_bytes = 0;

  /// Enable SO_RXQ_OVFL: the kernel attaches its cumulative drop counter to
  /// every received datagram, surfaced through kernel_drops(). Only the
  /// batched mmsg receive path reads the counter.
  bool track_kernel_drops = false;
};

class UdpSocket : public Socket {
 public:
  UdpSocket() = default;

  /// Creates an unbound UDP socket.
  static std::optional<UdpSocket> create();

  /// Creates and binds; port 0 requests an ephemeral port (read back with
  /// local_endpoint()).
  static std::optional<UdpSocket> bind(const Endpoint& endpoint);

  /// Creates and binds with ingest options (reuseport group membership,
  /// receive-buffer sizing, kernel drop accounting).
  static std::optional<UdpSocket> bind(const Endpoint& endpoint,
                                       const UdpBindOptions& options);

  /// Sends one datagram; returns bytes sent, accounting to the counter.
  IoResult send_to(std::string_view payload, const Endpoint& peer);

  /// Receives one datagram of up to max_size bytes. Honors SO_RCVTIMEO.
  IoResult receive_from(std::string& payload, Endpoint& peer, std::size_t max_size = 64 * 1024);

  /// Non-blocking receive (MSG_DONTWAIT): returns kTimeout immediately when
  /// the socket buffer is empty, regardless of SO_RCVTIMEO. Lets an ingest
  /// loop drain a burst of datagrams in one wakeup, resizing `payload` in
  /// place so a reused string stops allocating after the first call.
  IoResult try_receive_from(std::string& payload, Endpoint& peer,
                            std::size_t max_size = 64 * 1024);

  /// Convenience: receive with timeout applied for just this call. When
  /// `result_out` is non-null it carries the full IoResult — status and
  /// errno — so failover-aware callers (ISSUE 8) can tell a hard peer error
  /// (ECONNREFUSED from a dead replica) from an ordinary timeout.
  std::optional<Datagram> receive(util::Duration timeout, std::size_t max_size = 64 * 1024,
                                  IoResult* result_out = nullptr);

  // --- batched I/O (ROADMAP item 2) ---------------------------------------

  /// Receives up to `max_batch` datagrams in one recvmmsg: blocks for the
  /// first datagram honoring SO_RCVTIMEO (MSG_WAITFORONE), then takes
  /// whatever else is already queued without waiting. `batch` is resized to
  /// the number received and its entries are reused across calls, so a
  /// steady-state ingest loop stops allocating. Each entry's payload is
  /// capped at `max_size` bytes (longer datagrams are truncated by the
  /// kernel). Returns the count received; 0 with kTimeout in `result_out`
  /// when SO_RCVTIMEO expires. Injected faults (drop) apply per-datagram.
  std::size_t receive_batch(std::vector<Datagram>& batch, std::size_t max_batch,
                            std::size_t max_size = 2048, IoResult* result_out = nullptr);

  /// As receive_batch but never blocks (pure drain): returns immediately
  /// with 0/kTimeout when the socket buffer is empty. This is the reactor
  /// readable-callback form.
  std::size_t try_receive_batch(std::vector<Datagram>& batch, std::size_t max_batch,
                                std::size_t max_size = 2048, IoResult* result_out = nullptr);

  /// Sends every datagram in `batch` with one sendmmsg (looping on partial
  /// progress). Returns the number reported sent. Fault decisions — refuse,
  /// drop, delay, truncate/corrupt, duplicate — are drawn per-datagram in
  /// batch order *before* any syscall, so the mmsg path and the fallback
  /// path consume the injector's RNG identically and chaos runs reproduce
  /// across both. A refused or unroutable datagram is skipped and reported
  /// via `result_out` (first errno wins); the rest of the batch still goes.
  std::size_t send_batch(const std::vector<Datagram>& batch, IoResult* result_out = nullptr);

  /// Total datagrams the kernel reports dropped on this socket's receive
  /// queue (SO_RXQ_OVFL), as of the newest datagram read by the batched
  /// path. Requires UdpBindOptions::track_kernel_drops.
  std::uint64_t kernel_drops() const { return kernel_drops_; }

  /// Forces the portable single-syscall fallback even on Linux (tests prove
  /// behavior parity between recvmmsg/sendmmsg and the loop fallback).
  void set_force_syscall_fallback(bool on) { force_fallback_ = on; }

 private:
  IoResult receive_impl(int flags, std::string& payload, Endpoint& peer,
                        std::size_t max_size);
  std::size_t receive_batch_impl(bool wait_for_first, std::vector<Datagram>& batch,
                                 std::size_t max_batch, std::size_t max_size,
                                 IoResult* result_out);
  void note_rxq_counter(std::uint32_t cumulative);

  bool force_fallback_ = false;
  bool rxq_tracking_ = false;
  std::uint32_t last_rxq_ = 0;
  std::uint64_t kernel_drops_ = 0;
};

}  // namespace smartsock::net
