#include "net/tcp_listener.h"

#include <cerrno>

#include <poll.h>
#include <sys/socket.h>

namespace smartsock::net {

std::optional<TcpListener> TcpListener::listen(const Endpoint& endpoint, int backlog) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::nullopt;
  TcpListener listener;
  static_cast<Socket&>(listener) = Socket(fd);
  listener.set_reuse_address(true);

  sockaddr_in addr{};
  if (!endpoint.to_sockaddr(addr)) return std::nullopt;
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) return std::nullopt;
  if (::listen(fd, backlog) != 0) return std::nullopt;
  return listener;
}

std::optional<TcpSocket> TcpListener::accept(util::Duration timeout) {
  pollfd pfd{fd_, POLLIN, 0};
  int timeout_ms =
      static_cast<int>(std::chrono::duration_cast<std::chrono::milliseconds>(timeout).count());
  int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready <= 0) return std::nullopt;
  int client = ::accept(fd_, nullptr, nullptr);
  if (client < 0) return std::nullopt;
  return TcpSocket(client);
}

std::optional<TcpSocket> TcpListener::try_accept() {
  int client;
  do {
    client = ::accept(fd_, nullptr, nullptr);
  } while (client < 0 && errno == EINTR);
  if (client < 0) return std::nullopt;
  return TcpSocket(client);
}

}  // namespace smartsock::net
