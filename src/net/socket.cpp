#include "net/socket.h"

#include <fcntl.h>
#include <sys/socket.h>

#include <cerrno>
#include <sys/time.h>
#include <unistd.h>

#include <utility>

#include "net/fault.h"

namespace smartsock::net {

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      counter_(std::exchange(other.counter_, nullptr)),
      fault_(std::exchange(other.fault_, nullptr)) {}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    counter_ = std::exchange(other.counter_, nullptr);
    fault_ = std::exchange(other.fault_, nullptr);
  }
  return *this;
}

FaultInjector* Socket::active_fault_injector() const {
  return fault_ != nullptr ? fault_ : FaultInjector::global();
}

bool is_hard_peer_error(int error) {
  switch (error) {
    case ECONNREFUSED:
    case ECONNRESET:
    case EHOSTUNREACH:
    case EHOSTDOWN:
    case ENETUNREACH:
    case ENETDOWN:
      return true;
    default:
      return false;
  }
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

int Socket::release() {
  int fd = fd_;
  fd_ = -1;
  return fd;
}

Endpoint Socket::local_endpoint() const {
  if (fd_ < 0) return Endpoint();
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) return Endpoint();
  return Endpoint::from_sockaddr(addr);
}

namespace {
timeval to_timeval(util::Duration d) {
  auto usec = std::chrono::duration_cast<std::chrono::microseconds>(d).count();
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(usec / 1000000);
  tv.tv_usec = static_cast<suseconds_t>(usec % 1000000);
  return tv;
}
}  // namespace

bool Socket::set_receive_timeout(util::Duration timeout) {
  if (fd_ < 0) return false;
  timeval tv = to_timeval(timeout);
  return ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) == 0;
}

bool Socket::set_send_timeout(util::Duration timeout) {
  if (fd_ < 0) return false;
  timeval tv = to_timeval(timeout);
  return ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) == 0;
}

bool Socket::set_nonblocking(bool on) {
  if (fd_ < 0) return false;
  int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0) return false;
  int updated = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  return ::fcntl(fd_, F_SETFL, updated) == 0;
}

bool Socket::set_reuse_address(bool on) {
  if (fd_ < 0) return false;
  int value = on ? 1 : 0;
  return ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &value, sizeof(value)) == 0;
}

bool Socket::set_reuse_port(bool on) {
  if (fd_ < 0) return false;
#ifdef SO_REUSEPORT
  int value = on ? 1 : 0;
  return ::setsockopt(fd_, SOL_SOCKET, SO_REUSEPORT, &value, sizeof(value)) == 0;
#else
  return !on;  // a group of one still works without the option
#endif
}

bool Socket::set_receive_buffer(int bytes) {
  if (fd_ < 0 || bytes <= 0) return false;
  return ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &bytes, sizeof(bytes)) == 0;
}

int Socket::receive_buffer_bytes() const {
  if (fd_ < 0) return 0;
  int bytes = 0;
  socklen_t len = sizeof(bytes);
  if (::getsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &bytes, &len) != 0) return 0;
  return bytes;
}

}  // namespace smartsock::net
