// TCP stream socket.
//
// TCP carries the reliable paths: transmitter→receiver status transfer
// (§3.5) and the application data planes (matmul blocks, massd downloads).
// send_all/receive_exact implement the length-prefixed framing both use.
#pragma once

#include <optional>
#include <string>

#include "net/socket.h"

namespace smartsock::net {

class TcpSocket : public Socket {
 public:
  TcpSocket() = default;
  explicit TcpSocket(int fd) { static_cast<Socket&>(*this) = Socket(fd); }

  /// Blocking connect with timeout. Returns nullopt on failure/timeout.
  static std::optional<TcpSocket> connect(const Endpoint& peer, util::Duration timeout);

  /// Starts a non-blocking connect and returns the in-progress socket
  /// immediately (ISSUE 9 scrape client): the caller hands it to a reactor,
  /// which sees POLLOUT when the handshake resolves — a refused/unroutable
  /// peer surfaces as an unclean close, not a hang. Only socket creation
  /// failures (or an injected connect fault) return nullopt.
  static std::optional<TcpSocket> connect_nonblocking(const Endpoint& peer);

  /// Sends the entire buffer, looping over partial writes.
  IoResult send_all(std::string_view data);

  /// Single send attempt (non-blocking sockets: kTimeout = EAGAIN, write
  /// later). Routes through the fault injector like send_all.
  IoResult send_some(std::string_view data);

  /// Receives exactly `size` bytes into `out` (resized), looping over partial
  /// reads. kClosed if the peer shut down mid-message.
  IoResult receive_exact(std::string& out, std::size_t size);

  /// Receives up to `max_size` bytes (single read).
  IoResult receive_some(std::string& out, std::size_t max_size);

  /// Disables Nagle; latency-sensitive request/reply paths use this.
  bool set_no_delay(bool on);

  Endpoint peer_endpoint() const;
};

}  // namespace smartsock::net
