#include "net/endpoint.h"

#include <arpa/inet.h>

#include <cstring>

#include "util/strings.h"

namespace smartsock::net {

Endpoint::Endpoint(std::string_view ip, std::uint16_t port) : ip_(ip), port_(port) {}

std::optional<Endpoint> Endpoint::parse(std::string_view text) {
  std::size_t colon = text.rfind(':');
  if (colon == std::string_view::npos || colon == 0 || colon + 1 >= text.size()) {
    return std::nullopt;
  }
  std::string_view ip = text.substr(0, colon);
  auto port = util::parse_uint(text.substr(colon + 1));
  if (!port || *port > 65535) return std::nullopt;
  if (!util::looks_like_ipv4(ip)) return std::nullopt;
  return Endpoint(ip, static_cast<std::uint16_t>(*port));
}

Endpoint Endpoint::from_sockaddr(const sockaddr_in& addr) {
  char buf[INET_ADDRSTRLEN] = {};
  ::inet_ntop(AF_INET, &addr.sin_addr, buf, sizeof(buf));
  return Endpoint(buf, ntohs(addr.sin_port));
}

std::string Endpoint::to_string() const { return ip_ + ":" + std::to_string(port_); }

bool Endpoint::to_sockaddr(sockaddr_in& out) const {
  std::memset(&out, 0, sizeof(out));
  out.sin_family = AF_INET;
  out.sin_port = htons(port_);
  return ::inet_pton(AF_INET, ip_.c_str(), &out.sin_addr) == 1;
}

}  // namespace smartsock::net
