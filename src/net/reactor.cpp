#include "net/reactor.h"

#include <fcntl.h>
#include <sys/epoll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>

#include "net/poller.h"
#include "obs/blackbox.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace smartsock::net {

namespace {

std::int64_t steady_now_ns() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace

// --- CallbackScope ------------------------------------------------------------

/// Measures one callback's wall time into its site recorder and exposes the
/// in-callback window to the watchdog via the seqlock heartbeat. The raw
/// steady clock (never the injectable config clock) times both: a stalled
/// loop under VirtualClock must still be detected in real time.
class Reactor::CallbackScope {
 public:
  CallbackScope(Reactor* reactor, CallbackSite* site) : reactor_(reactor) {
    if (reactor_->cb_depth_++ > 0) return;  // nested: outer scope measures
    site_ = site;
    start_ns_ = steady_now_ns();
    reactor_->cb_label_.store(site_->label.c_str(), std::memory_order_relaxed);
    reactor_->cb_start_ns_.store(start_ns_, std::memory_order_relaxed);
    reactor_->cb_seq_.fetch_add(1, std::memory_order_release);  // odd: in callback
  }

  ~CallbackScope() {
    if (--reactor_->cb_depth_ > 0) return;
    reactor_->cb_seq_.fetch_add(1, std::memory_order_release);  // even: idle
    site_->recorder->record_us(static_cast<double>(steady_now_ns() - start_ns_) / 1000.0);
  }

  CallbackScope(const CallbackScope&) = delete;
  CallbackScope& operator=(const CallbackScope&) = delete;

 private:
  Reactor* reactor_;
  CallbackSite* site_ = nullptr;
  std::int64_t start_ns_ = 0;
};

// --- Connection ---------------------------------------------------------------

Connection::Connection(Reactor* reactor, TcpSocket socket, ConnectionHandler handler,
                       std::uint64_t id)
    : reactor_(reactor),
      socket_(std::move(socket)),
      handler_(std::move(handler)),
      id_(id),
      input_limit_(reactor->config().input_limit) {}

void Connection::consume(std::size_t n) {
  input_.erase(0, std::min(n, input_.size()));
  if (read_paused_ && !backpressured_ && !dead_ && !saw_eof_ &&
      input_.size() < input_limit_) {
    read_paused_ = false;
    reactor_->update_interest(socket_.fd(), {true, write_blocked_});
  }
}

void Connection::send(std::string_view data) {
  if (dead_) return;
  output_.append(data);
  if (!write_blocked_ && !flush_some()) return;  // connection died mid-write
  if (dead_) return;
  if (pending_output() > reactor_->config().output_high_watermark && !backpressured_) {
    // Write backpressure: a peer that stops reading must not grow our
    // buffer without bound, so stop reading from it until the socket
    // drains — the stall is visible as reactor_backpressure_stalls_total.
    backpressured_ = true;
    reactor_->stalls_->inc();
    if (!read_paused_) {
      read_paused_ = true;
      reactor_->update_interest(socket_.fd(), {false, write_blocked_});
    }
  }
}

void Connection::close_after_flush() {
  if (dead_) return;
  close_after_flush_ = true;
  if (pending_output() == 0) {
    finish(true);
  } else if (!read_paused_) {
    // No more requests will be parsed; stop reading while the tail drains.
    read_paused_ = true;
    reactor_->update_interest(socket_.fd(), {false, write_blocked_});
  }
}

void Connection::close_now() { finish(true); }

bool Connection::flush_some() {
  while (pending_output() > 0) {
    std::string_view chunk(output_.data() + output_offset_, pending_output());
    IoResult io = socket_.send_some(chunk);
    if (io.status == IoStatus::kTimeout) {  // EAGAIN: wait for writability
      if (!write_blocked_) {
        write_blocked_ = true;
        reactor_->update_interest(socket_.fd(), {!read_paused_, true});
      }
      return true;
    }
    if (!io.ok()) {
      finish(false);
      return false;
    }
    output_offset_ += io.bytes;
  }
  output_.clear();
  output_offset_ = 0;
  bool was_blocked = write_blocked_;
  write_blocked_ = false;
  bool resume_read = false;
  if (backpressured_) {
    backpressured_ = false;
    if (!close_after_flush_ && read_paused_ && !saw_eof_ && input_.size() < input_limit_) {
      read_paused_ = false;
      resume_read = true;
    }
  }
  if (was_blocked || resume_read) {
    reactor_->update_interest(socket_.fd(), {!read_paused_, false});
  }
  if (handler_.on_drain) handler_.on_drain(*this);
  if (!dead_ && close_after_flush_) finish(true);
  return !dead_;
}

void Connection::handle_readable() {
  bool got_data = false;
  std::string chunk;
  while (!dead_ && input_.size() < input_limit_) {
    IoResult io = socket_.receive_some(chunk, reactor_->config().read_chunk);
    if (io.ok()) {
      input_.append(chunk);
      got_data = true;
      if (io.bytes < reactor_->config().read_chunk) break;  // drained for now
      continue;
    }
    if (io.status == IoStatus::kTimeout) break;  // EAGAIN
    if (io.status == IoStatus::kClosed) {
      saw_eof_ = true;
      break;
    }
    // Hard error (ECONNRESET, injected fault): deliver what we have first.
    if (got_data && handler_.on_data) handler_.on_data(*this);
    if (!dead_) finish(false);
    return;
  }
  if (dead_) return;
  if (input_.size() >= input_limit_ && !read_paused_) {
    read_paused_ = true;
    reactor_->update_interest(socket_.fd(), {false, write_blocked_});
  }
  if (got_data && handler_.on_data) handler_.on_data(*this);
  if (!dead_ && saw_eof_) finish(true);
}

void Connection::handle_writable() {
  if (dead_ || !write_blocked_) return;
  write_blocked_ = false;
  flush_some();
}

void Connection::finish(bool clean) {
  if (dead_) return;
  dead_ = true;
  reactor_->retire_connection(this, clean);
}

// --- Reactor ------------------------------------------------------------------

Reactor::Reactor(ReactorConfig config) : config_(config) {
  auto& registry = obs::MetricsRegistry::instance();
  iterations_ = registry.counter("reactor_loop_iterations_total");
  timer_fires_ = registry.counter("reactor_timer_fires_total");
  stalls_ = registry.counter("reactor_backpressure_stalls_total");
  accepts_ = registry.counter("reactor_accepts_total");
  closes_ = registry.counter("reactor_closes_total");
  open_gauge_ = registry.gauge("reactor_connections_open");
  loop_lag_ = registry.histogram("reactor_loop_lag_us");
  watchdog_stalls_ = registry.counter("reactor_watchdog_stalls_total");
  stalled_gauge_ = registry.gauge("reactor_watchdog_stalled");
  posted_depth_gauge_ = registry.gauge("reactor_posted_queue_depth");
  timers_gauge_ = registry.gauge("reactor_timers_active");
  posted_site_ = intern_site("posted");

  int fds[2] = {-1, -1};
  if (::pipe(fds) == 0) {
    wake_read_fd_ = fds[0];
    wake_write_fd_ = fds[1];
    ::fcntl(wake_read_fd_, F_SETFL, ::fcntl(wake_read_fd_, F_GETFL, 0) | O_NONBLOCK);
    ::fcntl(wake_write_fd_, F_SETFL, ::fcntl(wake_write_fd_, F_GETFL, 0) | O_NONBLOCK);
  } else {
    SMARTSOCK_LOG(kError, "reactor") << "cannot create wakeup pipe";
  }

  if (config_.use_epoll) {
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) {
      SMARTSOCK_LOG(kWarn, "reactor") << "epoll_create1 failed, using poll fallback";
      config_.use_epoll = false;
    }
  }
  if (wake_read_fd_ >= 0) update_interest(wake_read_fd_, {true, false});

  last_tick_ = tick_of(config_.clock->now());
}

Reactor::~Reactor() {
  stop();
  close_all_connections();
  reap_dead();
  listeners_.clear();
  listener_fds_.clear();
  accept_handlers_.clear();
  accept_sites_.clear();
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
  // Back out this reactor's contribution to the process-wide gauges.
  timers_gauge_->add(static_cast<double>(-published_timers_));
  std::lock_guard<std::mutex> lock(post_mu_);
  if (!posted_.empty()) {
    posted_depth_gauge_->add(-static_cast<double>(posted_.size()));
    posted_.clear();
  }
}

Reactor::CallbackSite* Reactor::intern_site(const std::string& label) {
  auto& slot = sites_[label];
  if (!slot) {
    slot = std::make_unique<CallbackSite>();
    slot->label = label;
    slot->recorder = obs::MetricsRegistry::instance().histogram(
        "reactor_callback_us{site=\"" + label + "\"}");
  }
  return slot.get();
}

void Reactor::publish_gauges() {
  auto current = static_cast<std::int64_t>(timer_slots_.size());
  if (current != published_timers_) {
    timers_gauge_->add(static_cast<double>(current - published_timers_));
    published_timers_ = current;
  }
}

std::uint64_t Reactor::tick_of(util::Duration t) const {
  auto tick = config_.timer_tick.count();
  if (tick <= 0) tick = 1;
  return static_cast<std::uint64_t>(t.count() / tick);
}

bool Reactor::in_loop_thread() const {
  return loop_thread_id_.load(std::memory_order_acquire) == std::this_thread::get_id();
}

void Reactor::wakeup() {
  if (wake_write_fd_ < 0) return;
  char byte = 'w';
  [[maybe_unused]] ssize_t n = ::write(wake_write_fd_, &byte, 1);
}

void Reactor::drain_wakeup() {
  char buf[64];
  while (::read(wake_read_fd_, buf, sizeof(buf)) > 0) {
  }
}

void Reactor::post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    posted_.push_back(std::move(fn));
  }
  posted_depth_gauge_->add(1);
  wakeup();
}

void Reactor::run_on_loop(const std::function<void()>& fn) {
  if (in_loop_thread() || !running()) {
    fn();
    return;
  }
  // The loop may stop between the running() check above and the post below
  // (its final drain can already be past our entry), so waiting forever on
  // the loop is not an option. The waiter polls running(): once the loop is
  // gone and nobody claimed the task yet, the caller runs it inline. The
  // `claimed` flag makes execution exactly-once either way — a stale queue
  // entry drained later (stop() or a restarted loop) sees it and backs off.
  struct Waiter {
    std::mutex mu;
    std::condition_variable cv;
    bool claimed = false;
    bool done = false;
  };
  auto waiter = std::make_shared<Waiter>();
  post([waiter, &fn] {
    {
      std::lock_guard<std::mutex> lock(waiter->mu);
      if (waiter->claimed) return;  // caller already ran it inline
      waiter->claimed = true;
    }
    fn();
    std::lock_guard<std::mutex> lock(waiter->mu);
    waiter->done = true;
    waiter->cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(waiter->mu);
  while (!waiter->done) {
    if (waiter->cv.wait_for(lock, std::chrono::milliseconds(20),
                            [&] { return waiter->done; })) {
      break;
    }
    if (!running() && !waiter->claimed) {
      waiter->claimed = true;
      lock.unlock();
      fn();
      return;
    }
  }
}

void Reactor::run_posted() {
  std::deque<std::function<void()>> batch;
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    batch.swap(posted_);
  }
  if (!batch.empty()) posted_depth_gauge_->add(-static_cast<double>(batch.size()));
  for (auto& fn : batch) {
    CallbackScope scope(this, posted_site_);
    fn();
  }
}

void Reactor::offload(std::function<void()> work, std::function<void()> done) {
  if (config_.pool != nullptr) {
    config_.pool->submit(
        [this, work = std::move(work), done = std::move(done)]() mutable {
          work();
          post(std::move(done));
        });
  } else {
    work();
    post(std::move(done));
  }
}

// --- timers -------------------------------------------------------------------

void Reactor::schedule_insert(TimerEntry entry) {
  std::size_t slot = static_cast<std::size_t>(tick_of(entry.deadline) % kWheelSlots);
  timer_slots_[entry.id] = slot;
  wheel_[slot].push_back(std::move(entry));
}

TimerId Reactor::add_timer(util::Duration delay, std::function<void()> fn,
                           std::string label) {
  if (running() && !in_loop_thread()) {
    TimerId id = 0;
    run_on_loop([&] { id = add_timer(delay, std::move(fn), std::move(label)); });
    return id;
  }
  TimerEntry entry;
  entry.id = next_timer_id_++;
  entry.deadline = config_.clock->now() + delay;
  entry.fn = std::move(fn);
  entry.site = intern_site(label.empty() ? "timer" : label);
  TimerId id = entry.id;
  schedule_insert(std::move(entry));
  if (running() && !in_loop_thread()) wakeup();
  return id;
}

TimerId Reactor::add_periodic(util::Duration interval, std::function<void()> fn,
                              std::string label) {
  if (running() && !in_loop_thread()) {
    TimerId id = 0;
    run_on_loop([&] { id = add_periodic(interval, std::move(fn), std::move(label)); });
    return id;
  }
  if (interval <= util::Duration::zero()) interval = config_.timer_tick;
  TimerEntry entry;
  entry.id = next_timer_id_++;
  entry.deadline = config_.clock->now() + interval;
  entry.interval = interval;
  entry.fn = std::move(fn);
  entry.site = intern_site(label.empty() ? "timer" : label);
  TimerId id = entry.id;
  schedule_insert(std::move(entry));
  return id;
}

bool Reactor::cancel_timer(TimerId id) {
  if (running() && !in_loop_thread()) {
    bool ok = false;
    run_on_loop([&] { ok = cancel_timer(id); });
    return ok;
  }
  auto it = timer_slots_.find(id);
  if (it == timer_slots_.end()) return false;
  std::vector<TimerEntry>& slot = wheel_[it->second];
  for (std::size_t i = 0; i < slot.size(); ++i) {
    if (slot[i].id == id) {
      slot.erase(slot.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
  timer_slots_.erase(it);
  return true;
}

bool Reactor::rearm_timer(TimerId id, util::Duration delay) {
  if (running() && !in_loop_thread()) {
    bool ok = false;
    run_on_loop([&] { ok = rearm_timer(id, delay); });
    return ok;
  }
  auto it = timer_slots_.find(id);
  if (it == timer_slots_.end()) return false;
  std::vector<TimerEntry>& slot = wheel_[it->second];
  for (std::size_t i = 0; i < slot.size(); ++i) {
    if (slot[i].id == id) {
      TimerEntry entry = std::move(slot[i]);
      slot.erase(slot.begin() + static_cast<std::ptrdiff_t>(i));
      entry.deadline = config_.clock->now() + delay;
      schedule_insert(std::move(entry));
      return true;
    }
  }
  timer_slots_.erase(it);
  return false;
}

void Reactor::advance_timers() {
  util::Duration now = config_.clock->now();
  std::uint64_t now_tick = tick_of(now);
  if (now_tick < last_tick_) now_tick = last_tick_;

  std::vector<TimerEntry> due;
  auto collect = [&](std::vector<TimerEntry>& slot) {
    for (std::size_t i = 0; i < slot.size();) {
      if (slot[i].deadline <= now) {
        due.push_back(std::move(slot[i]));
        slot[i] = std::move(slot.back());
        slot.pop_back();
      } else {
        ++i;
      }
    }
  };

  if (now_tick - last_tick_ + 1 >= kWheelSlots) {
    for (auto& slot : wheel_) collect(slot);  // a whole lap: sweep everything
  } else {
    for (std::uint64_t t = last_tick_; t <= now_tick; ++t) {
      collect(wheel_[t % kWheelSlots]);
    }
  }
  last_tick_ = now_tick;
  if (due.empty()) return;

  // The wheel hashes deadlines to slots, so restore time order before firing.
  std::sort(due.begin(), due.end(), [](const TimerEntry& a, const TimerEntry& b) {
    return a.deadline != b.deadline ? a.deadline < b.deadline : a.id < b.id;
  });
  for (TimerEntry& entry : due) {
    // A callback earlier in this batch may have cancelled this timer; its
    // wheel entry is already extracted, so the registry is the truth.
    auto it = timer_slots_.find(entry.id);
    if (it == timer_slots_.end()) continue;
    timer_slots_.erase(it);
    timer_fires_->inc();
    // Loop lag: how late past its scheduled deadline this timer actually
    // fired, on the config clock (deterministic under VirtualClock).
    loop_lag_->record_us(
        static_cast<double>((now - entry.deadline).count()) / 1000.0);
    if (entry.interval > util::Duration::zero()) {
      // Re-register before firing so the callback can cancel_timer(id).
      TimerEntry next = entry;
      next.deadline = entry.deadline + entry.interval;
      if (next.deadline <= now) next.deadline = now + entry.interval;
      schedule_insert(std::move(next));
    }
    CallbackScope scope(this, entry.site != nullptr ? entry.site : posted_site_);
    entry.fn();
  }
}

util::Duration Reactor::next_timer_delay(util::Duration cap) {
  if (timer_slots_.empty()) return cap;
  util::Duration now = config_.clock->now();
  util::Duration best = cap;
  for (const auto& slot : wheel_) {
    for (const TimerEntry& entry : slot) {
      util::Duration wait = entry.deadline > now ? entry.deadline - now : util::Duration::zero();
      if (wait < best) best = wait;
    }
  }
  return best;
}

// --- fd registry --------------------------------------------------------------

void Reactor::update_interest(int fd, FdInterest interest) {
  if (fd < 0) return;
  bool known = interest_.count(fd) > 0;
  interest_[fd] = interest;
  if (epoll_fd_ < 0) return;
  epoll_event event{};
  event.events = (interest.read ? EPOLLIN : 0u) | (interest.write ? EPOLLOUT : 0u);
  event.data.fd = fd;
  int op = known ? EPOLL_CTL_MOD : EPOLL_CTL_ADD;
  if (::epoll_ctl(epoll_fd_, op, fd, &event) != 0) {
    // Self-heal a desynced registry: a close behind our back auto-removes the
    // fd from epoll (MOD -> ENOENT), and the recycled number may already be
    // registered when we think it is new (ADD -> EEXIST).
    int flipped = (op == EPOLL_CTL_MOD) ? EPOLL_CTL_ADD : EPOLL_CTL_MOD;
    bool desynced = (op == EPOLL_CTL_MOD && errno == ENOENT) ||
                    (op == EPOLL_CTL_ADD && errno == EEXIST);
    if (!desynced || ::epoll_ctl(epoll_fd_, flipped, fd, &event) != 0) {
      SMARTSOCK_LOG(kWarn, "reactor") << "epoll_ctl failed for fd " << fd
                                      << " errno=" << errno;
    }
  }
}

void Reactor::forget_fd(int fd) {
  if (fd < 0) return;
  if (interest_.erase(fd) > 0 && epoll_fd_ >= 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  }
}

ListenerId Reactor::add_listener(TcpListener* listener,
                                 std::function<void(TcpSocket)> on_accept,
                                 std::string label) {
  if (running() && !in_loop_thread()) {
    ListenerId id = 0;
    run_on_loop([&] { id = add_listener(listener, std::move(on_accept), std::move(label)); });
    return id;
  }
  if (listener == nullptr || !listener->valid()) return 0;
  ListenerId id = next_listener_id_++;
  int fd = listener->fd();
  listener->set_nonblocking(true);
  listeners_[id] = listener;
  listener_fds_[fd] = id;
  accept_handlers_[id] = std::move(on_accept);
  accept_sites_[id] = intern_site(label.empty() ? "accept" : label);
  update_interest(fd, {true, false});
  return id;
}

void Reactor::remove_listener(ListenerId id) {
  if (running() && !in_loop_thread()) {
    run_on_loop([&] { remove_listener(id); });
    return;
  }
  auto it = listeners_.find(id);
  if (it == listeners_.end()) return;
  int fd = it->second->fd();
  forget_fd(fd);
  listener_fds_.erase(fd);
  accept_handlers_.erase(id);
  accept_sites_.erase(id);
  listeners_.erase(it);
}

Connection* Reactor::add_connection(TcpSocket socket, ConnectionHandler handler) {
  if (running() && !in_loop_thread()) {
    Connection* connection = nullptr;
    run_on_loop([&] { connection = add_connection(std::move(socket), std::move(handler)); });
    return connection;
  }
  if (!socket.valid()) return nullptr;
  socket.set_nonblocking(true);
  int fd = socket.fd();
  std::uint64_t id = next_connection_id_++;
  CallbackSite* site = intern_site(handler.label.empty() ? "connection" : handler.label);
  auto connection = std::unique_ptr<Connection>(
      new Connection(this, std::move(socket), std::move(handler), id));
  Connection* raw = connection.get();
  raw->registered_fd_ = fd;
  raw->site_ = site;
  connections_[id] = std::move(connection);
  connection_fds_[fd] = raw;
  update_interest(fd, {true, false});
  open_gauge_->add(1);
  return raw;
}

FdWatchId Reactor::add_fd_watch(int fd, std::function<void()> on_readable,
                                std::string label) {
  if (running() && !in_loop_thread()) {
    FdWatchId id = 0;
    run_on_loop([&] { id = add_fd_watch(fd, std::move(on_readable), std::move(label)); });
    return id;
  }
  if (fd < 0 || !on_readable || watch_fds_.count(fd) > 0) return 0;
  FdWatchId id = next_watch_id_++;
  FdWatch watch;
  watch.fd = fd;
  watch.on_readable = std::move(on_readable);
  watch.site = intern_site(label.empty() ? "fd_watch" : label);
  fd_watches_[id] = std::move(watch);
  watch_fds_[fd] = id;
  update_interest(fd, {true, false});
  return id;
}

bool Reactor::remove_fd_watch(FdWatchId id) {
  if (running() && !in_loop_thread()) {
    bool removed = false;
    run_on_loop([&] { removed = remove_fd_watch(id); });
    return removed;
  }
  auto it = fd_watches_.find(id);
  if (it == fd_watches_.end()) return false;
  forget_fd(it->second.fd);
  watch_fds_.erase(it->second.fd);
  fd_watches_.erase(it);
  return true;
}

void Reactor::retire_connection(Connection* connection, bool clean) {
  int fd = connection->registered_fd_;
  // Only unhook the fd if the registry still maps it to us — the kernel may
  // have recycled the number for a newer connection after an out-of-band close.
  auto fd_it = connection_fds_.find(fd);
  if (fd_it != connection_fds_.end() && fd_it->second == connection) {
    forget_fd(fd);
    connection_fds_.erase(fd_it);
  }
  connection->socket_.close();
  closes_->inc();
  open_gauge_->add(-1);
  auto it = connections_.find(connection->id_);
  if (it != connections_.end()) {
    // Deferred destruction: the object stays alive until the end of this
    // loop iteration so callers up the stack can still touch it.
    dead_connections_.push_back(std::move(it->second));
    connections_.erase(it);
  }
  if (connection->handler_.on_close) connection->handler_.on_close(*connection, clean);
}

void Reactor::close_all_connections() {
  if (running() && !in_loop_thread()) {
    run_on_loop([&] { close_all_connections(); });
    return;
  }
  std::vector<Connection*> open;
  open.reserve(connections_.size());
  for (auto& [id, connection] : connections_) open.push_back(connection.get());
  for (Connection* connection : open) connection->close_now();
}

void Reactor::reap_dead() { dead_connections_.clear(); }

// --- the loop -----------------------------------------------------------------

void Reactor::dispatch_fd(int fd, bool readable, bool writable, bool hangup) {
  if (fd == wake_read_fd_) {
    drain_wakeup();
    return;
  }
  auto watch_it = watch_fds_.find(fd);
  if (watch_it != watch_fds_.end()) {
    // Raw-fd watch (UDP ingest shard). The handler is copied out because it
    // may remove_fd_watch itself mid-callback; error-flagged readiness
    // (hangup) is delivered too so the handler's receive can consume queued
    // socket errors (async ICMP on UDP).
    if (readable || hangup) {
      auto live_it = fd_watches_.find(watch_it->second);
      if (live_it != fd_watches_.end() && live_it->second.on_readable) {
        auto handler = live_it->second.on_readable;
        CallbackScope scope(this, live_it->second.site);
        handler();
      }
    }
    return;
  }
  auto listener_it = listener_fds_.find(fd);
  if (listener_it != listener_fds_.end()) {
    ListenerId id = listener_it->second;
    while (true) {
      // An on_accept callback may remove_listener (or destroy the listener),
      // so re-look everything up each lap; the handler is copied out because
      // invoking a std::function the callback erases from the map is UB.
      auto live_it = listeners_.find(id);
      if (live_it == listeners_.end()) break;
      auto accepted = live_it->second->try_accept();
      if (!accepted) break;
      accepts_->inc();
      accepted->set_nonblocking(true);
      auto handler_it = accept_handlers_.find(id);
      if (handler_it != accept_handlers_.end() && handler_it->second) {
        auto handler = handler_it->second;
        auto site_it = accept_sites_.find(id);
        CallbackScope scope(this,
                            site_it != accept_sites_.end() ? site_it->second : posted_site_);
        handler(std::move(*accepted));
      }
    }
    return;
  }
  auto connection_it = connection_fds_.find(fd);
  if (connection_it == connection_fds_.end()) return;  // closed earlier this round
  Connection* connection = connection_it->second;
  // A hangup with no read interest still needs a read attempt to observe
  // EOF vs reset; handle_readable is safe in both cases.
  if (readable || hangup) {
    CallbackScope scope(this, connection->site_);
    connection->handle_readable();
  }
  if (writable && connection_fds_.count(fd) > 0 &&
      connection_fds_[fd] == connection) {
    CallbackScope scope(this, connection->site_);
    connection->handle_writable();
  }
}

int Reactor::epoll_round(util::Duration wait) {
  constexpr int kMaxEvents = 128;
  epoll_event events[kMaxEvents];
  auto wait_ms = std::chrono::duration_cast<std::chrono::milliseconds>(wait);
  int timeout_ms = static_cast<int>(wait_ms.count());
  if (wait > util::Duration::zero() && wait_ms == std::chrono::milliseconds(0)) {
    timeout_ms = 1;  // round sub-millisecond waits up, not into a busy loop
  }
  int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, timeout_ms);
  if (n < 0) return 0;  // EINTR: just take the lap
  for (int i = 0; i < n; ++i) {
    bool hangup = (events[i].events & (EPOLLHUP | EPOLLERR)) != 0;
    dispatch_fd(events[i].data.fd, (events[i].events & EPOLLIN) != 0,
                (events[i].events & EPOLLOUT) != 0, hangup);
  }
  return n < 0 ? 0 : n;
}

int Reactor::poll_round(util::Duration wait) {
  std::vector<PollEntry> entries;
  entries.reserve(interest_.size());
  for (const auto& [fd, interest] : interest_) {
    PollEntry entry;
    entry.fd = fd;
    entry.want_read = interest.read;
    entry.want_write = interest.write;
    entries.push_back(entry);
  }
  int n = poll_sockets(entries, wait);
  if (n <= 0) return 0;
  for (const PollEntry& entry : entries) {
    if (!entry.readable && !entry.writable && !entry.hangup) continue;
    dispatch_fd(entry.fd, entry.readable, entry.writable, entry.hangup);
  }
  return n;
}

int Reactor::run_once(util::Duration max_wait) {
  auto previous = loop_thread_id_.exchange(std::this_thread::get_id(),
                                           std::memory_order_acq_rel);
  util::Duration wait = next_timer_delay(max_wait);
  if (wait < util::Duration::zero()) wait = util::Duration::zero();

  int events = config_.use_epoll && epoll_fd_ >= 0 ? epoll_round(wait) : poll_round(wait);
  run_posted();
  advance_timers();
  reap_dead();
  iterations_->inc();
  publish_gauges();

  loop_thread_id_.store(previous, std::memory_order_release);
  return events;
}

void Reactor::loop_thread_main() {
  while (!stop_requested_.load(std::memory_order_acquire)) {
    run_once(std::chrono::milliseconds(100));
  }
  // Drain any final posted work (e.g. component detach during shutdown).
  auto previous = loop_thread_id_.exchange(std::this_thread::get_id(),
                                           std::memory_order_acq_rel);
  run_posted();
  reap_dead();
  loop_thread_id_.store(previous, std::memory_order_release);
}

bool Reactor::start() {
  if (thread_.joinable() || wake_read_fd_ < 0) return false;
  stop_requested_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { loop_thread_main(); });
  start_watchdog();
  return true;
}

void Reactor::stop() {
  if (!thread_.joinable()) return;
  stop_watchdog();
  stop_requested_.store(true, std::memory_order_release);
  wakeup();
  thread_.join();
  running_.store(false, std::memory_order_release);
  // A racer that saw running()==true may have posted after the loop's final
  // drain; run those here (no loop thread left, so inline is safe) instead
  // of leaving them queued forever.
  run_posted();
}

// --- stall watchdog (ISSUE 7) -------------------------------------------------

void Reactor::start_watchdog() {
  if (config_.watchdog_stall_threshold <= util::Duration::zero()) return;
  if (watchdog_thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(watchdog_mu_);
    watchdog_stop_ = false;
  }
  watchdog_thread_ = std::thread([this] { watchdog_main(); });
}

void Reactor::stop_watchdog() {
  if (!watchdog_thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(watchdog_mu_);
    watchdog_stop_ = true;
  }
  watchdog_cv_.notify_all();
  watchdog_thread_.join();
}

void Reactor::watchdog_main() {
  const std::int64_t threshold_ns = config_.watchdog_stall_threshold.count();
  const std::int64_t fatal_ns = config_.watchdog_fatal_threshold.count();
  util::Duration check = config_.watchdog_check_interval;
  if (check <= util::Duration::zero()) check = std::chrono::milliseconds(100);
  std::uint64_t reported_seq = 0;
  bool flagged = false;

  std::unique_lock<std::mutex> lock(watchdog_mu_);
  while (!watchdog_stop_) {
    watchdog_cv_.wait_for(lock, check, [this] { return watchdog_stop_; });
    if (watchdog_stop_) break;

    std::uint64_t seq = cb_seq_.load(std::memory_order_acquire);
    if ((seq & 1) == 0) {  // loop idle between callbacks
      if (flagged) {
        stalled_gauge_->add(-1);
        flagged = false;
      }
      continue;
    }
    std::int64_t start_ns = cb_start_ns_.load(std::memory_order_relaxed);
    const char* label = cb_label_.load(std::memory_order_relaxed);
    if (cb_seq_.load(std::memory_order_acquire) != seq) continue;  // finished mid-read
    std::int64_t blocked_ns = steady_now_ns() - start_ns;
    if (blocked_ns < threshold_ns) {
      if (flagged) {  // previous stall ended; a new, fast callback is running
        stalled_gauge_->add(-1);
        flagged = false;
      }
      continue;
    }
    if (seq != reported_seq) {  // one report per stalled callback
      reported_seq = seq;
      watchdog_stalls_->inc();
      if (!flagged) {
        stalled_gauge_->add(1);
        flagged = true;
      }
      obs::TraceEvent(util::LogLevel::kWarn, "reactor", "loop_stall", "")
          .kv("handler", label != nullptr ? label : "unknown")
          .kv("blocked_ms", static_cast<long long>(blocked_ns / 1000000));
    }
    if (fatal_ns > 0 && blocked_ns >= fatal_ns) {
      std::string note = "watchdog_fatal handler=";
      note += label != nullptr ? label : "unknown";
      note += " blocked_ms=" + std::to_string(blocked_ns / 1000000);
      obs::Blackbox::annotate(note);
      lock.unlock();
      // The blackbox's SIGABRT handler (when installed) writes the
      // postmortem, annotation included, before the process dies.
      std::abort();
    }
  }
  if (flagged) stalled_gauge_->add(-1);
}

}  // namespace smartsock::net
