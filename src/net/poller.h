// Readiness polling over multiple sockets.
//
// The massd downloader multiplexes several server connections in one thread,
// exactly as the thesis's "large amount of read and write operations over
// multiple sockets" motivates (Fig 1.2).
#pragma once

#include <vector>

#include "net/socket.h"

namespace smartsock::net {

struct PollEntry {
  int fd = -1;
  bool want_read = false;
  bool want_write = false;
  bool readable = false;   // output
  bool writable = false;   // output
  bool hangup = false;     // output (POLLHUP/POLLERR)
};

/// poll(2) wrapper. Returns the number of ready entries, 0 on timeout,
/// -1 on error.
int poll_sockets(std::vector<PollEntry>& entries, util::Duration timeout);

}  // namespace smartsock::net
