// Async one-shot stats scrape (ISSUE 9).
//
// The stats protocol is deliberately simple — connect, write one command
// line, read until the server closes — and until now only blocking clients
// (smartsock-stats, tests) spoke it. The fleet aggregator needs the same
// exchange against N daemons concurrently from a reactor loop without ever
// blocking it, so this wraps the exchange as a reactor Connection: a
// non-blocking connect is handed to the loop, the command is queued behind
// the handshake, bytes accumulate until the peer's close delivers the body,
// and a wheel timer bounds the whole attempt. One fetch = one connection =
// one callback, always exactly once, always on the loop thread.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "net/endpoint.h"
#include "net/reactor.h"
#include "util/clock.h"

namespace smartsock::net {

struct ScrapeResult {
  bool ok = false;
  /// Failure reason when !ok: "connect failed", "timeout", "reset".
  std::string error;
  /// The server's full reply (everything until its close) when ok.
  std::string body;
  /// Connect-to-close wall time on the reactor's clock (so deterministic
  /// under sim::VirtualClock).
  std::uint64_t latency_us = 0;
};

class ScrapeClient {
 public:
  /// Replies a scrape servers can reasonably produce; a peer streaming more
  /// than this is treated as misbehaving and the fetch fails.
  static constexpr std::size_t kMaxBody = 8 * 1024 * 1024;

  /// Starts one fetch of `command` against `endpoint`'s stats port and
  /// invokes `done` exactly once with the outcome. Must be called on
  /// `reactor`'s loop thread (or while the reactor is not running, the
  /// deterministic run_once() test mode). `done` runs on the loop thread;
  /// it may start new fetches but must not block.
  static void fetch(Reactor& reactor, const Endpoint& endpoint, std::string command,
                    util::Duration timeout, std::function<void(ScrapeResult)> done);
};

}  // namespace smartsock::net
