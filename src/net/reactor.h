// Reactor core (ISSUE 6 tentpole).
//
// One non-blocking event loop per daemon instead of one blocking thread per
// TCP connection — the multiplexing engine the thesis's smart socket promises
// ("a large amount of read and write operations over multiple sockets",
// Fig 1.2). The loop owns:
//
//   * readiness polling       epoll(7) by default, poll(2) fallback
//   * a hashed timer wheel    one-shot + periodic timers, cancel/rearm
//   * Connection objects      buffered partial reads/writes, read and write
//                             watermarks, deferred close-after-flush
//   * a cross-thread mailbox  post() wakes the loop and runs a task on it
//   * thread-pool handoff     offload() runs CPU-bound work on a
//                             util::ThreadPool and posts the completion back
//
// Threading contract: every handler/timer callback runs on the loop thread;
// Connection methods and the timer/listener registry are loop-thread-only.
// The two thread-safe entry points are post() and stop(). Mutators called
// from other threads while the loop runs are transparently forwarded with
// run_on_loop(), which blocks until the loop executed them.
//
// The read/write paths route through net::FaultInjector exactly like the
// blocking socket wrappers, so the chaos layer (ISSUE 3) keeps working, and
// the loop exports reactor_* counters and the reactor_connections_open gauge
// through obs::MetricsRegistry.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/tcp_listener.h"
#include "net/tcp_socket.h"
#include "obs/metrics.h"
#include "util/clock.h"
#include "util/thread_pool.h"

namespace smartsock::net {

class Reactor;
class Connection;

using TimerId = std::uint64_t;
using ListenerId = std::uint64_t;
using FdWatchId = std::uint64_t;

namespace detail {
/// One named callback origin ("receiver_ingest", "posted", "timer", ...)
/// with its wall-time recorder (reactor_callback_us{site="<label>"}).
/// Interned per label by the Reactor; pointers are stable for the reactor's
/// lifetime, so the watchdog can publish label.c_str() through an atomic
/// without lifetime worries.
struct ReactorCallbackSite {
  std::string label;
  obs::Histogram* recorder = nullptr;
};
}  // namespace detail

/// Per-connection callbacks, all invoked on the loop thread.
struct ConnectionHandler {
  /// New bytes were appended to input(); consume what you can parse.
  std::function<void(Connection&)> on_data;
  /// The output buffer fully drained into the socket.
  std::function<void(Connection&)> on_drain;
  /// The connection is gone (peer hangup, error, or local close). `clean`
  /// is false for hard errors (reset, injected faults, oversized input).
  /// The Connection object outlives this call but no other callback fires.
  std::function<void(Connection&, bool clean)> on_close;
  /// Attribution label for loop telemetry (ISSUE 7): callback wall time is
  /// recorded into reactor_callback_us{site="<label>"} and a stall watchdog
  /// report names this site. Empty means the generic "connection" site.
  std::string label;
};

/// One multiplexed TCP connection owned by a Reactor. Loop-thread-only.
class Connection {
 public:
  std::uint64_t id() const { return id_; }
  TcpSocket& socket() { return socket_; }

  /// Buffered inbound bytes not yet consumed by the handler.
  std::string& input() { return input_; }
  /// Drops the first `n` bytes of input() (and may resume a paused read).
  void consume(std::size_t n);

  /// Appends to the output buffer and flushes opportunistically; the loop
  /// drains the remainder as the socket accepts it.
  void send(std::string_view data);

  /// Flush pending output, then close. No more on_data fires.
  void close_after_flush();
  /// Close immediately, discarding pending output.
  void close_now();

  /// Reading pauses while input() holds at least this many bytes and
  /// resumes when consume() drops it below (read watermark).
  void set_input_limit(std::size_t bytes) { input_limit_ = bytes; }

  std::size_t pending_output() const { return output_.size() - output_offset_; }
  bool closing() const { return close_after_flush_ || dead_; }
  /// False once the connection was retired (on_close already fired; the
  /// object only survives until the end of the loop iteration). Handlers
  /// must check this before arming timers that capture the Connection* —
  /// send() and close_after_flush() can retire the connection synchronously
  /// on a hard write error, and nothing cancels a timer armed after that.
  bool alive() const { return !dead_; }

  /// Arbitrary per-connection state for handlers.
  std::shared_ptr<void> user_data;

 private:
  friend class Reactor;
  Connection(Reactor* reactor, TcpSocket socket, ConnectionHandler handler,
             std::uint64_t id);

  void handle_readable();
  void handle_writable();
  bool flush_some();  // returns false on fatal write error (connection dead)
  void finish(bool clean);

  Reactor* reactor_;
  TcpSocket socket_;
  ConnectionHandler handler_;
  std::uint64_t id_;
  // The fd this connection registered with the reactor. socket_.fd() is not
  // enough: a fault injector (or the peer via an async error) can close the
  // socket mid-callback, and retire must still erase the right registry entry.
  int registered_fd_ = -1;

  std::string input_;
  std::string output_;
  std::size_t output_offset_ = 0;  // drained prefix of output_
  std::size_t input_limit_;
  bool read_paused_ = false;        // input watermark reached
  bool write_blocked_ = false;      // waiting for POLLOUT
  bool backpressured_ = false;      // output watermark reached, reads paused
  bool close_after_flush_ = false;
  bool saw_eof_ = false;
  bool dead_ = false;
  detail::ReactorCallbackSite* site_ = nullptr;  // telemetry attribution
};

struct ReactorConfig {
  /// Timer deadlines are measured on this clock, so tests can drive the
  /// wheel with sim::VirtualClock and manual run_once() steps.
  util::Clock* clock = &util::SteadyClock::instance();
  /// false = poll(2) readiness instead of epoll (portability/test path).
  bool use_epoll = true;
  /// Timer wheel granularity; deadlines round up to the next tick.
  util::Duration timer_tick = std::chrono::milliseconds(1);
  /// Bytes per read attempt.
  std::size_t read_chunk = 16 * 1024;
  /// Default per-connection input() cap before reading pauses.
  std::size_t input_limit = 1 << 20;
  /// Pending-output level that pauses reads on that connection until the
  /// socket drains below half of it (write backpressure).
  std::size_t output_high_watermark = 256 * 1024;
  /// Destination for offload(); may be null (offload runs work inline).
  util::ThreadPool* pool = nullptr;
  /// Stall watchdog (ISSUE 7): a monitor thread (started with start(); manual
  /// run_once() stepping has no watchdog) checks every `watchdog_check_interval`
  /// whether a single callback has been blocking the loop longer than
  /// `watchdog_stall_threshold`. Each distinct stall increments
  /// reactor_watchdog_stalls_total, raises the reactor_watchdog_stalled gauge
  /// while it lasts, and emits one event=loop_stall trace line naming the
  /// handler site. A zero stall threshold disables the watchdog.
  util::Duration watchdog_stall_threshold = std::chrono::milliseconds(500);
  util::Duration watchdog_check_interval = std::chrono::milliseconds(100);
  /// When nonzero, a callback blocked past this becomes fatal: the watchdog
  /// annotates the crash blackbox with the offending site and abort()s, so
  /// the postmortem names the handler that wedged the daemon. 0 = never.
  util::Duration watchdog_fatal_threshold{0};
};

class Reactor {
 public:
  explicit Reactor(ReactorConfig config = {});
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  // --- lifecycle ----------------------------------------------------------

  /// Spawns the owned loop thread. False if already running or setup failed.
  bool start();
  /// Stops and joins the owned loop thread; closes all connections.
  void stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Runs one poll round on the calling thread: wait for readiness at most
  /// `max_wait` (clamped to the next timer deadline), dispatch I/O, run
  /// posted tasks, fire due timers, reap closed connections. Returns the
  /// number of I/O events dispatched. This is the deterministic test entry
  /// point; start() is a `while (!stop) run_once(...)` around it.
  int run_once(util::Duration max_wait);

  /// True when called from the thread currently inside the loop.
  bool in_loop_thread() const;

  // --- cross-thread entry points ------------------------------------------

  /// Queues `fn` to run on the loop thread and wakes the loop. Thread-safe.
  void post(std::function<void()> fn);

  /// Runs `fn` on the loop thread and blocks until it finished. Runs inline
  /// when already on the loop thread (or when no loop is active).
  void run_on_loop(const std::function<void()>& fn);

  /// Runs `work` on the configured thread pool (inline if none), then posts
  /// `done` back to the loop thread. Call from the loop thread.
  void offload(std::function<void()> work, std::function<void()> done);

  // --- timers (hashed wheel) ----------------------------------------------

  /// `label` attributes the callback's wall time (and any watchdog report)
  /// to a named site in reactor_callback_us{site="<label>"}.
  TimerId add_timer(util::Duration delay, std::function<void()> fn,
                    std::string label = "timer");
  /// First fires after `interval`, then every `interval` until cancelled.
  TimerId add_periodic(util::Duration interval, std::function<void()> fn,
                       std::string label = "timer");
  /// True if the timer existed (not yet fired/cancelled).
  bool cancel_timer(TimerId id);
  /// Re-schedules an existing timer `delay` from now, keeping its callback
  /// and periodicity. False if it already fired or was cancelled.
  bool rearm_timer(TimerId id, util::Duration delay);
  std::size_t active_timers() const { return timer_slots_.size(); }

  // --- sockets ------------------------------------------------------------

  /// Watches a listening socket the caller keeps owning (components expose
  /// their endpoint()/valid() off it); the listener is switched to
  /// non-blocking and must outlive the registration. `on_accept` gets each
  /// accepted socket already switched to non-blocking mode.
  ListenerId add_listener(TcpListener* listener,
                          std::function<void(TcpSocket)> on_accept,
                          std::string label = "accept");
  void remove_listener(ListenerId id);

  /// Adopts a connected socket into the loop (switched to non-blocking).
  /// The returned pointer stays valid until after on_close returns.
  Connection* add_connection(TcpSocket socket, ConnectionHandler handler);

  /// Watches a raw descriptor the caller keeps owning — the UDP ingest
  /// shards (ROADMAP item 2) register their reuseport sockets here —
  /// invoking `on_readable` on the loop thread whenever the fd is readable
  /// (or error-flagged: UDP sockets surface async ICMP errors as EPOLLERR,
  /// and the callback's next receive consumes them). The fd must already be
  /// non-blocking and must outlive the watch; the callback should drain
  /// until EAGAIN or a batch cap (readiness is level-triggered, so leftover
  /// data re-fires the watch). `label` attributes callback wall time in
  /// reactor_callback_us{site="<label>"}. Returns 0 on a bad fd or one
  /// already watched. Thread-safe (forwards to the loop while running).
  FdWatchId add_fd_watch(int fd, std::function<void()> on_readable,
                         std::string label = "fd_watch");
  /// Drops a watch; the fd stays open (caller-owned). True if it existed.
  bool remove_fd_watch(FdWatchId id);

  /// Closes every connection this reactor owns (loop thread).
  void close_all_connections();

  std::size_t open_connections() const { return connections_.size(); }
  const ReactorConfig& config() const { return config_; }
  util::Clock& clock() { return *config_.clock; }

 private:
  friend class Connection;

  static constexpr std::size_t kWheelSlots = 512;

  using CallbackSite = detail::ReactorCallbackSite;

  /// RAII wall-time attribution + watchdog heartbeat around one callback.
  /// Only the outermost scope on the loop thread measures (nested callbacks
  /// — e.g. a timer fired from within on_data — fold into the outer site).
  class CallbackScope;

  struct TimerEntry {
    TimerId id = 0;
    util::Duration deadline{0};
    util::Duration interval{0};  // zero = one-shot
    std::function<void()> fn;
    CallbackSite* site = nullptr;
  };

  struct FdInterest {
    bool read = false;
    bool write = false;
  };

  void loop_thread_main();
  void wakeup();
  void drain_wakeup();
  void run_posted();
  void advance_timers();
  util::Duration next_timer_delay(util::Duration cap);
  int poll_round(util::Duration wait);   // poll(2) path
  int epoll_round(util::Duration wait);  // epoll(7) path
  void dispatch_fd(int fd, bool readable, bool writable, bool hangup);
  void update_interest(int fd, FdInterest interest);
  void forget_fd(int fd);
  void schedule_insert(TimerEntry entry);
  void reap_dead();
  void retire_connection(Connection* connection, bool clean);
  CallbackSite* intern_site(const std::string& label);
  void publish_gauges();
  void start_watchdog();
  void stop_watchdog();
  void watchdog_main();

  std::uint64_t tick_of(util::Duration t) const;

  ReactorConfig config_;

  int epoll_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;

  // fd registry: listeners and connections share the readiness sets.
  std::unordered_map<ListenerId, TcpListener*> listeners_;  // borrowed
  std::unordered_map<int, ListenerId> listener_fds_;
  std::unordered_map<ListenerId, std::function<void(TcpSocket)>> accept_handlers_;
  std::unordered_map<ListenerId, CallbackSite*> accept_sites_;
  struct FdWatch {
    int fd = -1;
    std::function<void()> on_readable;
    CallbackSite* site = nullptr;
  };
  std::unordered_map<FdWatchId, FdWatch> fd_watches_;
  std::unordered_map<int, FdWatchId> watch_fds_;
  std::unordered_map<int, Connection*> connection_fds_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Connection>> connections_;
  std::unordered_map<int, FdInterest> interest_;  // poll-fallback mirror
  std::vector<std::unique_ptr<Connection>> dead_connections_;

  // Hashed timer wheel: slot = tick(deadline) % kWheelSlots.
  std::array<std::vector<TimerEntry>, kWheelSlots> wheel_;
  std::unordered_map<TimerId, std::size_t> timer_slots_;
  std::uint64_t last_tick_ = 0;
  std::uint64_t next_timer_id_ = 1;
  std::uint64_t next_listener_id_ = 1;
  std::uint64_t next_connection_id_ = 1;
  std::uint64_t next_watch_id_ = 1;

  std::mutex post_mu_;
  std::deque<std::function<void()>> posted_;

  std::thread thread_;
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> running_{false};
  std::atomic<std::thread::id> loop_thread_id_{};

  // Metrics (process-wide; several reactors aggregate into the same names —
  // gauges are therefore published as deltas, never set()).
  obs::Counter* iterations_ = nullptr;
  obs::Counter* timer_fires_ = nullptr;
  obs::Counter* stalls_ = nullptr;
  obs::Counter* accepts_ = nullptr;
  obs::Counter* closes_ = nullptr;
  obs::Gauge* open_gauge_ = nullptr;

  // --- loop telemetry (ISSUE 7) -------------------------------------------
  // Scheduled-vs-actual timer fire delta, on the config clock.
  obs::Histogram* loop_lag_ = nullptr;
  obs::Counter* watchdog_stalls_ = nullptr;
  obs::Gauge* stalled_gauge_ = nullptr;
  obs::Gauge* posted_depth_gauge_ = nullptr;
  obs::Gauge* timers_gauge_ = nullptr;
  std::int64_t published_timers_ = 0;  // loop-thread-only delta anchor

  // Interned callback sites; values are stable for the reactor lifetime.
  std::unordered_map<std::string, std::unique_ptr<CallbackSite>> sites_;
  CallbackSite* posted_site_ = nullptr;

  // Watchdog heartbeat, seqlock-style: cb_seq_ odd = the loop thread is
  // inside a callback whose label/start the two payload atomics describe;
  // readers re-check the seq after reading the payload.
  std::atomic<std::uint64_t> cb_seq_{0};
  std::atomic<std::int64_t> cb_start_ns_{0};  // raw steady_clock, not config clock
  std::atomic<const char*> cb_label_{nullptr};
  int cb_depth_ = 0;  // loop-thread-only nesting guard

  std::thread watchdog_thread_;
  std::mutex watchdog_mu_;
  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;
};

}  // namespace smartsock::net
