#include "net/scrape_client.h"

#include <chrono>
#include <memory>
#include <utility>

namespace smartsock::net {

namespace {

/// Shared between the connection handler and the deadline timer. The
/// connection's user_data keeps it alive until on_close delivered.
struct FetchState {
  std::function<void(ScrapeResult)> done;
  util::Duration started{0};
  TimerId deadline = 0;
  bool timed_out = false;
  bool delivered = false;
};

}  // namespace

void ScrapeClient::fetch(Reactor& reactor, const Endpoint& endpoint, std::string command,
                         util::Duration timeout, std::function<void(ScrapeResult)> done) {
  auto state = std::make_shared<FetchState>();
  state->done = std::move(done);
  state->started = reactor.clock().now();

  auto fail = [&state](std::string error) {
    state->delivered = true;
    ScrapeResult result;
    result.ok = false;
    result.error = std::move(error);
    state->done(result);
  };

  auto socket = TcpSocket::connect_nonblocking(endpoint);
  if (!socket) {
    fail("connect failed");
    return;
  }

  ConnectionHandler handler;
  handler.label = "scrape";
  // Bytes just accumulate in input() until the peer closes; nothing to
  // parse incrementally.
  handler.on_close = [state, &reactor](Connection& client, bool clean) {
    if (state->deadline != 0) reactor.cancel_timer(state->deadline);
    if (state->delivered) return;
    state->delivered = true;
    ScrapeResult result;
    auto elapsed = reactor.clock().now() - state->started;
    result.latency_us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count());
    // close_now() from the deadline timer retires the connection as a
    // *clean* close, so the flag — not `clean` — identifies a timeout.
    if (state->timed_out) {
      result.error = "timeout";
    } else if (!clean) {
      result.error = "reset";
    } else {
      result.ok = true;
      result.body = std::move(client.input());
    }
    state->done(result);
  };

  Connection* client = reactor.add_connection(std::move(*socket), std::move(handler));
  if (client == nullptr || !client->alive()) {
    // add_connection retired it synchronously (hard error); on_close
    // already delivered in that case, so only report if it never fired.
    if (!state->delivered) fail("connect failed");
    return;
  }
  client->user_data = state;
  client->set_input_limit(kMaxBody);
  command.push_back('\n');
  client->send(command);
  if (!client->alive() || state->delivered) return;

  state->deadline = reactor.add_timer(
      timeout,
      [state, client] {
        state->deadline = 0;
        if (state->delivered || !client->alive()) return;
        state->timed_out = true;
        client->close_now();  // on_close delivers the timeout result
      },
      "scrape_deadline");
}

}  // namespace smartsock::net
