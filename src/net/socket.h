// RAII file-descriptor base for sockets.
//
// The thesis builds directly on the BSD socket API; these wrappers keep that
// shape (bind/connect/send/recv with timeouts) while guaranteeing descriptors
// are never leaked — every component here is long-running and restartable.
#pragma once

#include <cstdint>
#include <string>
#include <system_error>

#include "net/endpoint.h"
#include "util/clock.h"
#include "util/counters.h"

namespace smartsock::net {

class FaultInjector;

/// Owning wrapper for a socket descriptor. Move-only.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  /// Closes the descriptor (idempotent).
  void close();

  /// Releases ownership without closing.
  int release();

  /// Local address after bind()/connect(). Invalid endpoint on error.
  Endpoint local_endpoint() const;

  /// Sets SO_RCVTIMEO. Zero clears the timeout (blocking).
  bool set_receive_timeout(util::Duration timeout);

  /// Sets SO_SNDTIMEO.
  bool set_send_timeout(util::Duration timeout);

  /// Sets SO_REUSEADDR (used by restartable daemons).
  bool set_reuse_address(bool on);

  /// Sets SO_REUSEPORT so several sockets can bind the same address and the
  /// kernel steers incoming traffic across them by 4-tuple hash — the basis
  /// of the per-CPU ingest shard groups (ROADMAP item 2). Must be set before
  /// bind() on every member of the group.
  bool set_reuse_port(bool on);

  /// Sets SO_RCVBUF. The kernel doubles the requested value for bookkeeping;
  /// read the effective size back with receive_buffer_bytes().
  bool set_receive_buffer(int bytes);

  /// Effective SO_RCVBUF in bytes, or 0 on error.
  int receive_buffer_bytes() const;

  /// Toggles O_NONBLOCK; reactor-owned sockets run non-blocking.
  bool set_nonblocking(bool on);

  /// Attaches a traffic counter; every send/recv through subclasses is
  /// accounted to it. May be nullptr (no accounting).
  void set_traffic_counter(util::TrafficCounter* counter) { counter_ = counter; }
  util::TrafficCounter* traffic_counter() const { return counter_; }

  /// Attaches a fault injector to *this socket only* (tests). When unset,
  /// the process-global injector (FaultInjector::global()) applies.
  void set_fault_injector(FaultInjector* injector) { fault_ = injector; }

  /// The injector governing this socket's I/O, or nullptr when chaos is off.
  FaultInjector* active_fault_injector() const;

 protected:
  int fd_ = -1;
  util::TrafficCounter* counter_ = nullptr;
  FaultInjector* fault_ = nullptr;
};

/// Classifies recoverable receive outcomes so callers can loop cleanly.
enum class IoStatus {
  kOk,        // data transferred
  kTimeout,   // SO_RCVTIMEO expired (EAGAIN/EWOULDBLOCK)
  kClosed,    // orderly shutdown by peer (TCP only)
  kError,     // hard error; errno preserved in IoResult::error
};

struct IoResult {
  IoStatus status = IoStatus::kError;
  std::size_t bytes = 0;
  int error = 0;

  bool ok() const { return status == IoStatus::kOk; }
};

/// Whether `error` (an errno from a UDP send/receive) proves the peer is
/// unreachable right now — ECONNREFUSED from an ICMP port-unreachable, or a
/// host/network-unreachable route error. A retry against the same endpoint
/// cannot succeed until the peer comes back, so failover-aware callers
/// (ISSUE 8) demote the replica immediately instead of burning a backoff
/// step. Timeouts and transient errors (EAGAIN, ENOBUFS...) return false.
bool is_hard_peer_error(int error);

}  // namespace smartsock::net
