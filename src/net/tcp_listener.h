// TCP listening socket.
//
// Each simulated server hosts its service ports (matmul worker, massd file
// server, transmitter) through this listener; accept() honors SO_RCVTIMEO so
// service loops can poll their shutdown flag.
#pragma once

#include <optional>

#include "net/tcp_socket.h"

namespace smartsock::net {

class TcpListener : public Socket {
 public:
  TcpListener() = default;

  /// Binds and listens; port 0 requests an ephemeral port.
  static std::optional<TcpListener> listen(const Endpoint& endpoint, int backlog = 16);

  /// Accepts one connection, waiting at most `timeout`. nullopt on timeout
  /// or error.
  std::optional<TcpSocket> accept(util::Duration timeout);

  /// Non-blocking accept: one pending connection or nullopt right away
  /// (reactor accept path; pair with set_nonblocking(true)).
  std::optional<TcpSocket> try_accept();
};

}  // namespace smartsock::net
