#include "net/tcp_socket.h"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>

#include "net/fault.h"

namespace smartsock::net {

std::optional<TcpSocket> TcpSocket::connect(const Endpoint& peer, util::Duration timeout) {
  if (FaultInjector* fault = FaultInjector::global()) {
    if (fault->fail_connect()) return std::nullopt;
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::nullopt;
  TcpSocket sock(fd);

  sockaddr_in addr{};
  if (!peer.to_sockaddr(addr)) return std::nullopt;

  // Non-blocking connect + poll gives us a bounded connection attempt; the
  // client library must not hang on one dead server out of a candidate list.
  int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);

  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) return std::nullopt;
  if (rc != 0) {
    pollfd pfd{fd, POLLOUT, 0};
    int timeout_ms = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(timeout).count());
    int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready <= 0) return std::nullopt;
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      return std::nullopt;
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  return sock;
}

std::optional<TcpSocket> TcpSocket::connect_nonblocking(const Endpoint& peer) {
  if (FaultInjector* fault = FaultInjector::global()) {
    if (fault->fail_connect()) return std::nullopt;
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::nullopt;
  TcpSocket sock(fd);

  sockaddr_in addr{};
  if (!peer.to_sockaddr(addr)) return std::nullopt;
  if (!sock.set_nonblocking(true)) return std::nullopt;

  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) return std::nullopt;
  return sock;
}

IoResult TcpSocket::send_all(std::string_view data) {
  std::size_t limit = data.size();
  if (FaultInjector* fault = active_fault_injector()) {
    if (fault->reset_send()) {
      close();
      return IoResult{IoStatus::kError, 0, ECONNRESET};
    }
    limit = fault->truncate_send(data.size());
  }
  std::size_t sent = 0;
  while (sent < limit) {
    ssize_t n = ::send(fd_, data.data() + sent, limit - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return IoResult{IoStatus::kTimeout, sent, errno};
      return IoResult{IoStatus::kError, sent, errno};
    }
    sent += static_cast<std::size_t>(n);
  }
  if (limit < data.size()) {
    // Injected partial write: the peer sees a half-written frame then RST.
    close();
    return IoResult{IoStatus::kError, sent, EPIPE};
  }
  if (counter_) counter_->add_sent(sent);
  return IoResult{IoStatus::kOk, sent, 0};
}

IoResult TcpSocket::send_some(std::string_view data) {
  std::size_t limit = data.size();
  if (FaultInjector* fault = active_fault_injector()) {
    if (fault->reset_send()) {
      close();
      return IoResult{IoStatus::kError, 0, ECONNRESET};
    }
    limit = fault->truncate_send(data.size());
  }
  ssize_t n;
  do {
    n = ::send(fd_, data.data(), limit, MSG_NOSIGNAL);
  } while (n < 0 && errno == EINTR);
  if (n < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoResult{IoStatus::kTimeout, 0, errno};
    return IoResult{IoStatus::kError, 0, errno};
  }
  if (limit < data.size() && static_cast<std::size_t>(n) == limit) {
    // Injected partial write: the peer sees a half-written stream then RST.
    close();
    return IoResult{IoStatus::kError, static_cast<std::size_t>(n), EPIPE};
  }
  if (counter_) counter_->add_sent(static_cast<std::uint64_t>(n));
  return IoResult{IoStatus::kOk, static_cast<std::size_t>(n), 0};
}

IoResult TcpSocket::receive_exact(std::string& out, std::size_t size) {
  if (FaultInjector* fault = active_fault_injector()) {
    if (fault->reset_recv()) {
      close();
      out.clear();
      return IoResult{IoStatus::kError, 0, ECONNRESET};
    }
  }
  out.resize(size);
  std::size_t received = 0;
  while (received < size) {
    ssize_t n = ::recv(fd_, out.data() + received, size - received, 0);
    if (n == 0) {
      out.resize(received);
      return IoResult{IoStatus::kClosed, received, 0};
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      out.resize(received);
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return IoResult{IoStatus::kTimeout, received, errno};
      }
      return IoResult{IoStatus::kError, received, errno};
    }
    received += static_cast<std::size_t>(n);
  }
  if (counter_) counter_->add_received(received);
  return IoResult{IoStatus::kOk, received, 0};
}

IoResult TcpSocket::receive_some(std::string& out, std::size_t max_size) {
  if (FaultInjector* fault = active_fault_injector()) {
    if (fault->reset_recv()) {
      close();
      out.clear();
      return IoResult{IoStatus::kError, 0, ECONNRESET};
    }
  }
  out.resize(max_size);
  ssize_t n;
  do {
    n = ::recv(fd_, out.data(), max_size, 0);
  } while (n < 0 && errno == EINTR);
  if (n == 0) {
    out.clear();
    return IoResult{IoStatus::kClosed, 0, 0};
  }
  if (n < 0) {
    out.clear();
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoResult{IoStatus::kTimeout, 0, errno};
    return IoResult{IoStatus::kError, 0, errno};
  }
  out.resize(static_cast<std::size_t>(n));
  if (counter_) counter_->add_received(static_cast<std::uint64_t>(n));
  return IoResult{IoStatus::kOk, static_cast<std::size_t>(n), 0};
}

bool TcpSocket::set_no_delay(bool on) {
  int value = on ? 1 : 0;
  return ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &value, sizeof(value)) == 0;
}

Endpoint TcpSocket::peer_endpoint() const {
  if (fd_ < 0) return Endpoint();
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getpeername(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) return Endpoint();
  return Endpoint::from_sockaddr(addr);
}

}  // namespace smartsock::net
