#include "ipc/status_store.h"

#include <algorithm>
#include <chrono>
#include <cstring>

namespace smartsock::ipc {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

SysKey sys_key_of(const SysRecord& record) {
  SysKey key;
  std::memcpy(key.address, record.address, kAddressLen);
  return key;
}

NetKey net_key_of(const NetRecord& record) {
  NetKey key;
  std::memcpy(key.from_group, record.from_group, kGroupLen);
  std::memcpy(key.to_group, record.to_group, kGroupLen);
  return key;
}

SecKey sec_key_of(const SecRecord& record) {
  SecKey key;
  std::memcpy(key.host, record.host, kHostNameLen);
  return key;
}

bool StatusStore::erase_sys(const SysKey& key) {
  std::vector<SysRecord> records = sys_records();
  auto drop = [&](const SysRecord& r) {
    return std::strncmp(r.address, key.address, kAddressLen) == 0;
  };
  auto end = std::remove_if(records.begin(), records.end(), drop);
  if (end == records.end()) return false;
  records.erase(end, records.end());
  replace_sys(records);
  return true;
}

bool StatusStore::erase_net(const NetKey& key) {
  std::vector<NetRecord> records = net_records();
  auto drop = [&](const NetRecord& r) {
    return std::strncmp(r.from_group, key.from_group, kGroupLen) == 0 &&
           std::strncmp(r.to_group, key.to_group, kGroupLen) == 0;
  };
  auto end = std::remove_if(records.begin(), records.end(), drop);
  if (end == records.end()) return false;
  records.erase(end, records.end());
  replace_net(records);
  return true;
}

bool StatusStore::erase_sec(const SecKey& key) {
  std::vector<SecRecord> records = sec_records();
  auto drop = [&](const SecRecord& r) {
    return std::strncmp(r.host, key.host, kHostNameLen) == 0;
  };
  auto end = std::remove_if(records.begin(), records.end(), drop);
  if (end == records.end()) return false;
  records.erase(end, records.end());
  replace_sec(records);
  return true;
}

SnapshotPtr StatusStore::snapshot() const {
  auto snap = std::make_shared<Snapshot>();
  // Version first: a concurrent mutation can only make this snapshot look
  // older than it is, never newer (the same direction the wizard's reply
  // cache relies on).
  snap->version = version();
  snap->epoch = snap->version;  // every snapshot its own epoch: no deltas
  snap->delta_capable = false;
  snap->delta_floor = snap->version;
  snap->sys = sys_records();
  snap->net = net_records();
  snap->sec = sec_records();
  for (const SysRecord& record : snap->sys) {
    if (record.updated_ns > snap->newest_sys_update_ns) {
      snap->newest_sys_update_ns = record.updated_ns;
    }
  }
  return snap;
}

std::uint64_t StatusStore::newest_sys_update_ns() const {
  std::uint64_t newest = 0;
  for (const SysRecord& record : sys_records()) {
    if (record.updated_ns > newest) newest = record.updated_ns;
  }
  return newest;
}

}  // namespace smartsock::ipc
