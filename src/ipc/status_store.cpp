#include "ipc/status_store.h"

#include <chrono>

namespace smartsock::ipc {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace smartsock::ipc
