#include "ipc/status_store.h"

#include <chrono>

namespace smartsock::ipc {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t StatusStore::newest_sys_update_ns() const {
  std::uint64_t newest = 0;
  for (const SysRecord& record : sys_records()) {
    if (record.updated_ns > newest) newest = record.updated_ns;
  }
  return newest;
}

}  // namespace smartsock::ipc
