// Fixed-layout status records (§3.5.1, Fig 3.10).
//
// The thesis transfers monitor databases between machines in raw binary
// ("the contents can be directly copied to shared memory"), accepting a
// same-architecture constraint. We keep that design: the three record types
// are trivially-copyable PODs with fixed-width members, memcpy-framed by the
// transport codec and stored contiguously in the SysV shared-memory store.
//
// SysRecord deliberately lands close to the thesis's "204 bytes per server
// status structure" (§5.2).
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>

namespace smartsock::ipc {

inline constexpr std::size_t kHostNameLen = 28;
inline constexpr std::size_t kAddressLen = 24;
inline constexpr std::size_t kGroupLen = 16;

/// Copies a string into a fixed char array, always NUL-terminated.
void copy_fixed(char* dst, std::size_t capacity, const std::string& src);

/// Reads a fixed char array back into a string.
std::string read_fixed(const char* src, std::size_t capacity);

/// One server's system status (sysdb entry).
struct SysRecord {
  char host[kHostNameLen] = {};
  char address[kAddressLen] = {};
  char group[kGroupLen] = {};

  double load1 = 0, load5 = 0, load15 = 0;
  double cpu_user = 0, cpu_nice = 0, cpu_system = 0, cpu_idle = 0;
  double bogomips = 0;
  double mem_total_mb = 0, mem_used_mb = 0, mem_free_mb = 0;
  double disk_rreq_ps = 0, disk_rblocks_ps = 0, disk_wreq_ps = 0, disk_wblocks_ps = 0;
  double net_rbytes_ps = 0, net_rpackets_ps = 0, net_tbytes_ps = 0, net_tpackets_ps = 0;

  std::uint64_t updated_ns = 0;  // monitor-side report timestamp

  std::string host_str() const { return read_fixed(host, kHostNameLen); }
  std::string address_str() const { return read_fixed(address, kAddressLen); }
  std::string group_str() const { return read_fixed(group, kGroupLen); }
};

/// One network path's metrics (netdb entry): local group -> remote group.
struct NetRecord {
  char from_group[kGroupLen] = {};
  char to_group[kGroupLen] = {};
  double delay_ms = 0;
  double bw_mbps = 0;
  std::uint64_t updated_ns = 0;

  std::string from_str() const { return read_fixed(from_group, kGroupLen); }
  std::string to_str() const { return read_fixed(to_group, kGroupLen); }
};

/// One server's security clearance (secdb entry).
struct SecRecord {
  char host[kHostNameLen] = {};
  std::int32_t level = 0;
  std::int32_t pad = 0;  // keep 8-byte layout explicit
  std::uint64_t updated_ns = 0;

  std::string host_str() const { return read_fixed(host, kHostNameLen); }
};

static_assert(std::is_trivially_copyable_v<SysRecord>);
static_assert(std::is_trivially_copyable_v<NetRecord>);
static_assert(std::is_trivially_copyable_v<SecRecord>);

}  // namespace smartsock::ipc
