// Shared status store interface (§3.2.2, §4.2).
//
// Three databases — sysdb, netdb, secdb — written by the monitors, shipped
// by the transmitter, mirrored by the receiver and read by the wizard. The
// thesis keeps them in SysV shared memory guarded by SysV semaphores; the
// SysVStatusStore reproduces that, while InMemoryStatusStore provides the
// same contract for single-process deployments and tests.
//
// ISSUE 5 adds two scaling levers on top of the thesis design:
//  * snapshot() — an immutable copy-on-write view readers share by pointer,
//    so hot read paths (wizard matcher, transmitter) stop paying O(records)
//    vector copies per call;
//  * per-record versions + a tombstone log inside the snapshot, so the
//    transmitter can ship only what changed since a receiver's last acked
//    version instead of mirroring whole databases every interval.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ipc/status_record.h"

namespace smartsock::ipc {

/// Tombstone keys — the identity of a deleted record, fixed-layout so delta
/// frames can memcpy arrays of them exactly like the record payloads.
struct SysKey {
  char address[kAddressLen] = {};
};
struct NetKey {
  char from_group[kGroupLen] = {};
  char to_group[kGroupLen] = {};
};
struct SecKey {
  char host[kHostNameLen] = {};
};
static_assert(std::is_trivially_copyable_v<SysKey>);
static_assert(std::is_trivially_copyable_v<NetKey>);
static_assert(std::is_trivially_copyable_v<SecKey>);

SysKey sys_key_of(const SysRecord& record);
NetKey net_key_of(const NetRecord& record);
SecKey sec_key_of(const SecRecord& record);

/// Immutable point-in-time view of the three databases. Produced by
/// StatusStore::snapshot() as a shared_ptr; readers hold the pointer for the
/// duration of their scan and never copy the record vectors. Stores with
/// delta support also expose per-record versions and the recent tombstone
/// history so the transmitter can compute incremental updates.
struct Snapshot {
  /// Store version at capture time (same counter as StatusStore::version()).
  std::uint64_t version = 0;
  /// Bulk-operation generation: changes on replace_*/clear (and on every
  /// snapshot for stores without delta support). Two snapshots with
  /// different epochs cannot be related by a delta.
  std::uint64_t epoch = 0;
  /// Whether per-record versions and the tombstone log below are maintained.
  /// False for stores (e.g. SysV shared memory) that only support full
  /// snapshots — the transmitter then always ships complete databases.
  bool delta_capable = false;
  /// Oldest base version (inclusive) a delta can be computed from: the
  /// bounded tombstone log covers (delta_floor, version]. A receiver whose
  /// acked version is below this floor must resync with a full snapshot.
  std::uint64_t delta_floor = 0;
  /// Max updated_ns across sys records (0 when empty) — carried so feed-age
  /// checks need no extra scan.
  std::uint64_t newest_sys_update_ns = 0;

  std::vector<SysRecord> sys;
  std::vector<NetRecord> net;
  std::vector<SecRecord> sec;

  /// Parallel to the record vectors: the store version at which each record
  /// was last written. Empty when !delta_capable.
  std::vector<std::uint64_t> sys_versions;
  std::vector<std::uint64_t> net_versions;
  std::vector<std::uint64_t> sec_versions;

  /// Deletions since delta_floor, oldest first: (version removed at, key).
  std::vector<std::pair<std::uint64_t, SysKey>> sys_tombstones;
  std::vector<std::pair<std::uint64_t, NetKey>> net_tombstones;
  std::vector<std::pair<std::uint64_t, SecKey>> sec_tombstones;

  /// Whether a delta from `base_version` (a peer's acked state with matching
  /// epoch) can be served from this snapshot.
  bool can_delta_from(std::uint64_t base_version) const {
    return delta_capable && base_version >= delta_floor && base_version <= version;
  }
};

using SnapshotPtr = std::shared_ptr<const Snapshot>;

class StatusStore {
 public:
  virtual ~StatusStore() = default;

  /// Upserts keyed by server address (the thesis updates in place when the
  /// address exists, §3.2.2).
  virtual bool put_sys(const SysRecord& record) = 0;
  /// Upserts keyed by (from_group, to_group).
  virtual bool put_net(const NetRecord& record) = 0;
  /// Upserts keyed by host.
  virtual bool put_sec(const SecRecord& record) = 0;

  virtual std::vector<SysRecord> sys_records() const = 0;
  virtual std::vector<NetRecord> net_records() const = 0;
  virtual std::vector<SecRecord> sec_records() const = 0;

  /// Bulk replacement — the receiver mirrors whole databases (§3.5.2).
  /// Non-incremental: bumps the epoch, so deltas never span a replace.
  virtual void replace_sys(const std::vector<SysRecord>& records) = 0;
  virtual void replace_net(const std::vector<NetRecord>& records) = 0;
  virtual void replace_sec(const std::vector<SecRecord>& records) = 0;

  /// Keyed deletion — the receiver applies delta tombstones through these.
  /// Returns true when a record was removed. The base implementations
  /// filter-and-replace (O(records)); stores override with something
  /// cheaper where it matters.
  virtual bool erase_sys(const SysKey& key);
  virtual bool erase_net(const NetKey& key);
  virtual bool erase_sec(const SecKey& key);

  /// Removes sys records whose updated_ns is older than `cutoff_ns` — the
  /// monitor's stale-server sweep ("3 consecutive intervals", §4.1).
  /// Returns the number removed.
  virtual std::size_t expire_sys_older_than(std::uint64_t cutoff_ns) = 0;

  virtual void clear() = 0;

  /// Data version: increases on every mutation of any of the three
  /// databases. The wizard's reply cache compares versions to decide whether
  /// a cached selection still reflects the current store contents; a version
  /// may over-count (bump without an observable change) but must never miss
  /// a change.
  virtual std::uint64_t version() const = 0;

  /// Immutable view of the current contents. The base implementation builds
  /// a fresh copy on every call (delta_capable = false, epoch = version);
  /// stores with copy-on-write support return a cached pointer that is only
  /// rebuilt after a mutation, making repeated reads between writes free.
  virtual SnapshotPtr snapshot() const;

  /// The newest sys record's updated_ns — the age of the status feed, which
  /// the wizard compares against its staleness bound to decide whether it is
  /// serving degraded (stale) data. Zero when the sysdb is empty. The base
  /// implementation scans sys_records(); stores may override with something
  /// cheaper.
  virtual std::uint64_t newest_sys_update_ns() const;
};

/// Monotonic timestamp in ns, the time base for record staleness.
std::uint64_t steady_now_ns();

}  // namespace smartsock::ipc
