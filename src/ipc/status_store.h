// Shared status store interface (§3.2.2, §4.2).
//
// Three databases — sysdb, netdb, secdb — written by the monitors, shipped
// by the transmitter, mirrored by the receiver and read by the wizard. The
// thesis keeps them in SysV shared memory guarded by SysV semaphores; the
// SysVStatusStore reproduces that, while InMemoryStatusStore provides the
// same contract for single-process deployments and tests.
#pragma once

#include <cstdint>
#include <vector>

#include "ipc/status_record.h"

namespace smartsock::ipc {

class StatusStore {
 public:
  virtual ~StatusStore() = default;

  /// Upserts keyed by server address (the thesis updates in place when the
  /// address exists, §3.2.2).
  virtual bool put_sys(const SysRecord& record) = 0;
  /// Upserts keyed by (from_group, to_group).
  virtual bool put_net(const NetRecord& record) = 0;
  /// Upserts keyed by host.
  virtual bool put_sec(const SecRecord& record) = 0;

  virtual std::vector<SysRecord> sys_records() const = 0;
  virtual std::vector<NetRecord> net_records() const = 0;
  virtual std::vector<SecRecord> sec_records() const = 0;

  /// Bulk replacement — the receiver mirrors whole databases (§3.5.2).
  virtual void replace_sys(const std::vector<SysRecord>& records) = 0;
  virtual void replace_net(const std::vector<NetRecord>& records) = 0;
  virtual void replace_sec(const std::vector<SecRecord>& records) = 0;

  /// Removes sys records whose updated_ns is older than `cutoff_ns` — the
  /// monitor's stale-server sweep ("3 consecutive intervals", §4.1).
  /// Returns the number removed.
  virtual std::size_t expire_sys_older_than(std::uint64_t cutoff_ns) = 0;

  virtual void clear() = 0;

  /// Data version: increases on every mutation of any of the three
  /// databases. The wizard's reply cache compares versions to decide whether
  /// a cached selection still reflects the current store contents; a version
  /// may over-count (bump without an observable change) but must never miss
  /// a change.
  virtual std::uint64_t version() const = 0;

  /// The newest sys record's updated_ns — the age of the status feed, which
  /// the wizard compares against its staleness bound to decide whether it is
  /// serving degraded (stale) data. Zero when the sysdb is empty. The base
  /// implementation scans sys_records(); stores may override with something
  /// cheaper.
  virtual std::uint64_t newest_sys_update_ns() const;
};

/// Monotonic timestamp in ns, the time base for record staleness.
std::uint64_t steady_now_ns();

}  // namespace smartsock::ipc
