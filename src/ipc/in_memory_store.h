// Mutex-guarded in-process status store.
#pragma once

#include <atomic>
#include <mutex>

#include "ipc/status_store.h"

namespace smartsock::ipc {

class InMemoryStatusStore final : public StatusStore {
 public:
  bool put_sys(const SysRecord& record) override;
  bool put_net(const NetRecord& record) override;
  bool put_sec(const SecRecord& record) override;

  std::vector<SysRecord> sys_records() const override;
  std::vector<NetRecord> net_records() const override;
  std::vector<SecRecord> sec_records() const override;

  void replace_sys(const std::vector<SysRecord>& records) override;
  void replace_net(const std::vector<NetRecord>& records) override;
  void replace_sec(const std::vector<SecRecord>& records) override;

  std::size_t expire_sys_older_than(std::uint64_t cutoff_ns) override;
  void clear() override;
  std::uint64_t version() const override {
    return version_.load(std::memory_order_acquire);
  }
  std::uint64_t newest_sys_update_ns() const override;

 private:
  std::atomic<std::uint64_t> version_{0};
  mutable std::mutex mu_;
  std::vector<SysRecord> sys_;
  std::vector<NetRecord> net_;
  std::vector<SecRecord> sec_;
};

}  // namespace smartsock::ipc
