// Mutex-guarded in-process status store.
//
// Full delta/snapshot support (ISSUE 5): every mutation stamps the written
// record with the new store version, deletions land in a bounded tombstone
// log, and snapshot() returns a cached immutable view that is only rebuilt
// after a mutation — readers between writes share one pointer and copy
// nothing.
#pragma once

#include <atomic>
#include <deque>
#include <mutex>

#include "ipc/status_store.h"

namespace smartsock::ipc {

class InMemoryStatusStore final : public StatusStore {
 public:
  /// `tombstone_cap` bounds the per-database deletion log; a receiver whose
  /// acked version predates the oldest retained tombstone is resynced with a
  /// full snapshot (Snapshot::delta_floor). Tests shrink it to force gaps.
  explicit InMemoryStatusStore(std::size_t tombstone_cap = 4096);

  bool put_sys(const SysRecord& record) override;
  bool put_net(const NetRecord& record) override;
  bool put_sec(const SecRecord& record) override;

  std::vector<SysRecord> sys_records() const override;
  std::vector<NetRecord> net_records() const override;
  std::vector<SecRecord> sec_records() const override;

  void replace_sys(const std::vector<SysRecord>& records) override;
  void replace_net(const std::vector<NetRecord>& records) override;
  void replace_sec(const std::vector<SecRecord>& records) override;

  bool erase_sys(const SysKey& key) override;
  bool erase_net(const NetKey& key) override;
  bool erase_sec(const SecKey& key) override;

  std::size_t expire_sys_older_than(std::uint64_t cutoff_ns) override;
  void clear() override;
  std::uint64_t version() const override {
    return version_.load(std::memory_order_acquire);
  }
  SnapshotPtr snapshot() const override;
  /// O(1): the max is tracked on write instead of the base class's scan.
  std::uint64_t newest_sys_update_ns() const override;

 private:
  /// Bumps the version under mu_ and invalidates the cached snapshot.
  std::uint64_t next_version();
  /// Non-incremental mutation: new epoch, tombstone logs void.
  void bump_epoch(std::uint64_t at_version);
  void trim_tombstones();
  std::uint64_t recompute_newest_sys() const;

  const std::size_t tombstone_cap_;
  std::atomic<std::uint64_t> version_{0};
  mutable std::mutex mu_;
  std::vector<SysRecord> sys_;
  std::vector<NetRecord> net_;
  std::vector<SecRecord> sec_;
  // Store version at which each record was last written (parallel vectors).
  std::vector<std::uint64_t> sys_versions_;
  std::vector<std::uint64_t> net_versions_;
  std::vector<std::uint64_t> sec_versions_;
  // Deletions since delta_floor_, oldest first.
  std::deque<std::pair<std::uint64_t, SysKey>> sys_tombstones_;
  std::deque<std::pair<std::uint64_t, NetKey>> net_tombstones_;
  std::deque<std::pair<std::uint64_t, SecKey>> sec_tombstones_;
  std::uint64_t epoch_;
  std::uint64_t delta_floor_ = 0;
  std::uint64_t newest_sys_ = 0;
  // Copy-on-write: rebuilt lazily on the first snapshot() after a mutation.
  mutable SnapshotPtr cached_snapshot_;
};

}  // namespace smartsock::ipc
