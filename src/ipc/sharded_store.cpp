#include "ipc/sharded_store.h"

#include <cstring>

namespace smartsock::ipc {
namespace {

constexpr std::uint64_t kFnvBasis = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

// FNV-1a over the key's used bytes. Keys are fixed-width NUL-padded char
// arrays compared with strncmp, so hashing stops at the first NUL to stay
// consistent with key equality.
std::uint64_t fnv1a(const char* s, std::size_t max_len, std::uint64_t h) {
  for (std::size_t i = 0; i < max_len && s[i] != '\0'; ++i) {
    h ^= static_cast<unsigned char>(s[i]);
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

ShardedStatusStore::ShardedStatusStore(std::size_t shards, std::size_t tombstone_cap) {
  if (shards == 0) shards = 1;
  partitions_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    partitions_.push_back(std::make_unique<InMemoryStatusStore>(tombstone_cap));
  }
}

std::size_t ShardedStatusStore::shard_of_sys(const char* address) const {
  return fnv1a(address, kAddressLen, kFnvBasis) % partitions_.size();
}

std::size_t ShardedStatusStore::shard_of_net(const char* from_group,
                                             const char* to_group) const {
  std::uint64_t h = fnv1a(from_group, kGroupLen, kFnvBasis);
  h = fnv1a(to_group, kGroupLen, h * kFnvPrime + 1);
  return h % partitions_.size();
}

std::size_t ShardedStatusStore::shard_of_sec(const char* host) const {
  return fnv1a(host, kHostNameLen, kFnvBasis) % partitions_.size();
}

bool ShardedStatusStore::put_sys(const SysRecord& record) {
  bool changed = partitions_[shard_of_sys(record.address)]->put_sys(record);
  if (!single()) bump_version();
  return changed;
}

bool ShardedStatusStore::put_net(const NetRecord& record) {
  bool changed = partitions_[shard_of_net(record.from_group, record.to_group)]->put_net(record);
  if (!single()) bump_version();
  return changed;
}

bool ShardedStatusStore::put_sec(const SecRecord& record) {
  bool changed = partitions_[shard_of_sec(record.host)]->put_sec(record);
  if (!single()) bump_version();
  return changed;
}

std::vector<SysRecord> ShardedStatusStore::sys_records() const {
  if (single()) return partitions_[0]->sys_records();
  std::vector<SysRecord> all;
  for (const auto& partition : partitions_) {
    auto records = partition->sys_records();
    all.insert(all.end(), records.begin(), records.end());
  }
  return all;
}

std::vector<NetRecord> ShardedStatusStore::net_records() const {
  if (single()) return partitions_[0]->net_records();
  std::vector<NetRecord> all;
  for (const auto& partition : partitions_) {
    auto records = partition->net_records();
    all.insert(all.end(), records.begin(), records.end());
  }
  return all;
}

std::vector<SecRecord> ShardedStatusStore::sec_records() const {
  if (single()) return partitions_[0]->sec_records();
  std::vector<SecRecord> all;
  for (const auto& partition : partitions_) {
    auto records = partition->sec_records();
    all.insert(all.end(), records.begin(), records.end());
  }
  return all;
}

void ShardedStatusStore::replace_sys(const std::vector<SysRecord>& records) {
  if (single()) {
    partitions_[0]->replace_sys(records);
    return;
  }
  // Bulk ops hold the merge lock so a concurrent merged capture sees either
  // every partition pre-replace or every partition post-replace, never a mix
  // (the "no torn epochs" rule).
  std::lock_guard<std::mutex> lock(merge_mu_);
  std::vector<std::vector<SysRecord>> buckets(partitions_.size());
  for (const SysRecord& record : records) {
    buckets[shard_of_sys(record.address)].push_back(record);
  }
  for (std::size_t i = 0; i < partitions_.size(); ++i) {
    partitions_[i]->replace_sys(buckets[i]);
  }
  bump_version();
}

void ShardedStatusStore::replace_net(const std::vector<NetRecord>& records) {
  if (single()) {
    partitions_[0]->replace_net(records);
    return;
  }
  std::lock_guard<std::mutex> lock(merge_mu_);
  std::vector<std::vector<NetRecord>> buckets(partitions_.size());
  for (const NetRecord& record : records) {
    buckets[shard_of_net(record.from_group, record.to_group)].push_back(record);
  }
  for (std::size_t i = 0; i < partitions_.size(); ++i) {
    partitions_[i]->replace_net(buckets[i]);
  }
  bump_version();
}

void ShardedStatusStore::replace_sec(const std::vector<SecRecord>& records) {
  if (single()) {
    partitions_[0]->replace_sec(records);
    return;
  }
  std::lock_guard<std::mutex> lock(merge_mu_);
  std::vector<std::vector<SecRecord>> buckets(partitions_.size());
  for (const SecRecord& record : records) {
    buckets[shard_of_sec(record.host)].push_back(record);
  }
  for (std::size_t i = 0; i < partitions_.size(); ++i) {
    partitions_[i]->replace_sec(buckets[i]);
  }
  bump_version();
}

bool ShardedStatusStore::erase_sys(const SysKey& key) {
  bool erased = partitions_[shard_of_sys(key.address)]->erase_sys(key);
  if (!single() && erased) bump_version();
  return erased;
}

bool ShardedStatusStore::erase_net(const NetKey& key) {
  bool erased = partitions_[shard_of_net(key.from_group, key.to_group)]->erase_net(key);
  if (!single() && erased) bump_version();
  return erased;
}

bool ShardedStatusStore::erase_sec(const SecKey& key) {
  bool erased = partitions_[shard_of_sec(key.host)]->erase_sec(key);
  if (!single() && erased) bump_version();
  return erased;
}

std::size_t ShardedStatusStore::expire_sys_older_than(std::uint64_t cutoff_ns) {
  if (single()) return partitions_[0]->expire_sys_older_than(cutoff_ns);
  std::size_t removed = 0;
  for (const auto& partition : partitions_) {
    removed += partition->expire_sys_older_than(cutoff_ns);
  }
  if (removed > 0) bump_version();
  return removed;
}

void ShardedStatusStore::clear() {
  if (single()) {
    partitions_[0]->clear();
    return;
  }
  std::lock_guard<std::mutex> lock(merge_mu_);
  for (const auto& partition : partitions_) partition->clear();
  bump_version();
}

std::uint64_t ShardedStatusStore::version() const {
  if (single()) return partitions_[0]->version();
  return version_.load(std::memory_order_acquire);
}

std::uint64_t ShardedStatusStore::newest_sys_update_ns() const {
  if (single()) return partitions_[0]->newest_sys_update_ns();
  std::uint64_t newest = 0;
  for (const auto& partition : partitions_) {
    newest = std::max(newest, partition->newest_sys_update_ns());
  }
  return newest;
}

SnapshotPtr ShardedStatusStore::snapshot() const {
  if (single()) return partitions_[0]->snapshot();  // full delta support
  std::lock_guard<std::mutex> lock(merge_mu_);
  std::uint64_t v = version_.load(std::memory_order_acquire);
  if (cache_valid_ && cached_version_ == v) return cached_merged_;
  cached_merged_ = build_merged_locked(v);
  // Stamp with the version read *before* the capture: every mutation that
  // completed before v is in some partition (commit precedes bump), so the
  // merged view covers at least version v — it may also contain newer
  // concurrent writes, which only makes the stamp conservative. A writer
  // racing the capture bumps version_ past v and invalidates this cache.
  cached_version_ = v;
  cache_valid_ = true;
  return cached_merged_;
}

SnapshotPtr ShardedStatusStore::build_merged_locked(std::uint64_t version) const {
  auto merged = std::make_shared<Snapshot>();
  merged->version = version;
  merged->delta_capable = false;  // per-record versions don't compare across partitions
  merged->delta_floor = 0;
  std::vector<SnapshotPtr> views;
  views.reserve(partitions_.size());
  std::size_t sys_total = 0, net_total = 0, sec_total = 0;
  for (const auto& partition : partitions_) {
    SnapshotPtr view = partition->snapshot();
    merged->epoch += view->epoch;
    merged->newest_sys_update_ns =
        std::max(merged->newest_sys_update_ns, view->newest_sys_update_ns);
    sys_total += view->sys.size();
    net_total += view->net.size();
    sec_total += view->sec.size();
    views.push_back(std::move(view));
  }
  merged->sys.reserve(sys_total);
  merged->net.reserve(net_total);
  merged->sec.reserve(sec_total);
  for (const SnapshotPtr& view : views) {
    merged->sys.insert(merged->sys.end(), view->sys.begin(), view->sys.end());
    merged->net.insert(merged->net.end(), view->net.begin(), view->net.end());
    merged->sec.insert(merged->sec.end(), view->sec.begin(), view->sec.end());
  }
  return merged;
}

}  // namespace smartsock::ipc
