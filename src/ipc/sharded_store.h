// Key-hash partitioned status store (ROADMAP item 2).
//
// One InMemoryStatusStore partition per ingest shard, so N reuseport ingest
// threads upsert concurrently without sharing a mutex, plus an
// epoch-consistent merged view for readers built on the same COW SnapshotPtr
// machinery: per-partition snapshots are captured together under the merge
// lock, concatenated once, cached, and handed out by pointer until the next
// mutation — the wizard match path still takes exactly one SnapshotPtr and
// copies no record vectors.
//
// Partitioning is by key hash (FNV-1a over the record key), NOT by receiving
// shard: SO_REUSEPORT steers datagrams by the sender's 4-tuple, so a
// restarted probe (new source port) can land on a different ingest shard —
// routing by key keeps each record's home partition stable and upserts
// in-place wherever the report arrives.
//
// Consistency contract:
//  * put/erase route to one partition; the partition commits first, then the
//    store-wide version bumps — so a version observed by a reader always
//    covers every mutation that completed before it (the wizard reply-cache
//    rule: version may over-count, never miss a change).
//  * replace_*/clear/capture serialize on the merge lock, so a merged
//    snapshot can never observe half of a bulk operation (no torn epochs);
//    the merged epoch is the sum of partition epochs.
//  * The merged view reports delta_capable = false (per-record versions are
//    per-partition counters and cannot be compared across partitions), so
//    the transmitter falls back to full pushes. A single-shard store
//    delegates straight to its one partition and keeps full delta support —
//    the default configuration is byte-for-byte today's semantics.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "ipc/in_memory_store.h"

namespace smartsock::ipc {

class ShardedStatusStore final : public StatusStore {
 public:
  /// `shards` partitions (at least one); `tombstone_cap` is forwarded to
  /// each partition (only meaningful for shards == 1, where delta support
  /// survives).
  explicit ShardedStatusStore(std::size_t shards, std::size_t tombstone_cap = 4096);

  std::size_t shards() const { return partitions_.size(); }

  /// The partition a key routes to — ingest shards use this to tag per-shard
  /// metrics; tests use it to prove routing stability.
  std::size_t shard_of_sys(const char* address) const;
  std::size_t shard_of_net(const char* from_group, const char* to_group) const;
  std::size_t shard_of_sec(const char* host) const;

  /// Direct partition access (tests, per-shard introspection).
  StatusStore& partition(std::size_t index) { return *partitions_[index]; }
  const StatusStore& partition(std::size_t index) const { return *partitions_[index]; }

  bool put_sys(const SysRecord& record) override;
  bool put_net(const NetRecord& record) override;
  bool put_sec(const SecRecord& record) override;

  std::vector<SysRecord> sys_records() const override;
  std::vector<NetRecord> net_records() const override;
  std::vector<SecRecord> sec_records() const override;

  void replace_sys(const std::vector<SysRecord>& records) override;
  void replace_net(const std::vector<NetRecord>& records) override;
  void replace_sec(const std::vector<SecRecord>& records) override;

  bool erase_sys(const SysKey& key) override;
  bool erase_net(const NetKey& key) override;
  bool erase_sec(const SecKey& key) override;

  std::size_t expire_sys_older_than(std::uint64_t cutoff_ns) override;
  void clear() override;
  std::uint64_t version() const override;
  SnapshotPtr snapshot() const override;
  std::uint64_t newest_sys_update_ns() const override;

 private:
  bool single() const { return partitions_.size() == 1; }
  /// Commits happen in the partition first; the store-wide bump comes after,
  /// so version() never runs ahead of visible data.
  void bump_version() { version_.fetch_add(1, std::memory_order_release); }
  SnapshotPtr build_merged_locked(std::uint64_t version) const;

  std::vector<std::unique_ptr<InMemoryStatusStore>> partitions_;
  std::atomic<std::uint64_t> version_{0};

  /// Guards bulk operations (replace/clear) and the merged-snapshot cache.
  mutable std::mutex merge_mu_;
  mutable SnapshotPtr cached_merged_;
  mutable std::uint64_t cached_version_ = 0;
  mutable bool cache_valid_ = false;
};

}  // namespace smartsock::ipc
