#include "ipc/in_memory_store.h"

#include <algorithm>
#include <cstring>

namespace smartsock::ipc {

InMemoryStatusStore::InMemoryStatusStore(std::size_t tombstone_cap)
    : tombstone_cap_(tombstone_cap),
      // Seeded from the clock so two store instances never share an epoch:
      // a transmitter restarted onto a fresh store can't alias a receiver's
      // replica state from the previous store.
      epoch_(steady_now_ns()) {}

std::uint64_t InMemoryStatusStore::next_version() {
  cached_snapshot_.reset();
  return version_.fetch_add(1, std::memory_order_acq_rel) + 1;
}

void InMemoryStatusStore::bump_epoch(std::uint64_t at_version) {
  ++epoch_;
  sys_tombstones_.clear();
  net_tombstones_.clear();
  sec_tombstones_.clear();
  delta_floor_ = at_version;
}

void InMemoryStatusStore::trim_tombstones() {
  auto trim = [&](auto& log) {
    while (log.size() > tombstone_cap_) {
      delta_floor_ = std::max(delta_floor_, log.front().first);
      log.pop_front();
    }
  };
  trim(sys_tombstones_);
  trim(net_tombstones_);
  trim(sec_tombstones_);
}

std::uint64_t InMemoryStatusStore::recompute_newest_sys() const {
  std::uint64_t newest = 0;
  for (const SysRecord& record : sys_) {
    if (record.updated_ns > newest) newest = record.updated_ns;
  }
  return newest;
}

bool InMemoryStatusStore::put_sys(const SysRecord& record) {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t v = next_version();
  for (std::size_t i = 0; i < sys_.size(); ++i) {
    if (std::strncmp(sys_[i].address, record.address, kAddressLen) == 0) {
      // Overwriting the record that held the max with an older timestamp
      // must lower the tracked max — same answer as the scanning default.
      bool was_newest = sys_[i].updated_ns == newest_sys_;
      sys_[i] = record;
      sys_versions_[i] = v;
      if (record.updated_ns >= newest_sys_) {
        newest_sys_ = record.updated_ns;
      } else if (was_newest) {
        newest_sys_ = recompute_newest_sys();
      }
      return true;
    }
  }
  if (record.updated_ns > newest_sys_) newest_sys_ = record.updated_ns;
  sys_.push_back(record);
  sys_versions_.push_back(v);
  return true;
}

bool InMemoryStatusStore::put_net(const NetRecord& record) {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t v = next_version();
  for (std::size_t i = 0; i < net_.size(); ++i) {
    if (std::strncmp(net_[i].from_group, record.from_group, kGroupLen) == 0 &&
        std::strncmp(net_[i].to_group, record.to_group, kGroupLen) == 0) {
      net_[i] = record;
      net_versions_[i] = v;
      return true;
    }
  }
  net_.push_back(record);
  net_versions_.push_back(v);
  return true;
}

bool InMemoryStatusStore::put_sec(const SecRecord& record) {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t v = next_version();
  for (std::size_t i = 0; i < sec_.size(); ++i) {
    if (std::strncmp(sec_[i].host, record.host, kHostNameLen) == 0) {
      sec_[i] = record;
      sec_versions_[i] = v;
      return true;
    }
  }
  sec_.push_back(record);
  sec_versions_.push_back(v);
  return true;
}

std::vector<SysRecord> InMemoryStatusStore::sys_records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sys_;
}

std::vector<NetRecord> InMemoryStatusStore::net_records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return net_;
}

std::vector<SecRecord> InMemoryStatusStore::sec_records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sec_;
}

void InMemoryStatusStore::replace_sys(const std::vector<SysRecord>& records) {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t v = next_version();
  bump_epoch(v);
  sys_ = records;
  sys_versions_.assign(sys_.size(), v);
  newest_sys_ = recompute_newest_sys();
}

void InMemoryStatusStore::replace_net(const std::vector<NetRecord>& records) {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t v = next_version();
  bump_epoch(v);
  net_ = records;
  net_versions_.assign(net_.size(), v);
}

void InMemoryStatusStore::replace_sec(const std::vector<SecRecord>& records) {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t v = next_version();
  bump_epoch(v);
  sec_ = records;
  sec_versions_.assign(sec_.size(), v);
}

bool InMemoryStatusStore::erase_sys(const SysKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < sys_.size(); ++i) {
    if (std::strncmp(sys_[i].address, key.address, kAddressLen) != 0) continue;
    std::uint64_t v = next_version();
    bool was_newest = sys_[i].updated_ns == newest_sys_;
    sys_.erase(sys_.begin() + static_cast<std::ptrdiff_t>(i));
    sys_versions_.erase(sys_versions_.begin() + static_cast<std::ptrdiff_t>(i));
    sys_tombstones_.emplace_back(v, key);
    trim_tombstones();
    if (was_newest) newest_sys_ = recompute_newest_sys();
    return true;
  }
  return false;
}

bool InMemoryStatusStore::erase_net(const NetKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < net_.size(); ++i) {
    if (std::strncmp(net_[i].from_group, key.from_group, kGroupLen) != 0 ||
        std::strncmp(net_[i].to_group, key.to_group, kGroupLen) != 0) {
      continue;
    }
    std::uint64_t v = next_version();
    net_.erase(net_.begin() + static_cast<std::ptrdiff_t>(i));
    net_versions_.erase(net_versions_.begin() + static_cast<std::ptrdiff_t>(i));
    net_tombstones_.emplace_back(v, key);
    trim_tombstones();
    return true;
  }
  return false;
}

bool InMemoryStatusStore::erase_sec(const SecKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < sec_.size(); ++i) {
    if (std::strncmp(sec_[i].host, key.host, kHostNameLen) != 0) continue;
    std::uint64_t v = next_version();
    sec_.erase(sec_.begin() + static_cast<std::ptrdiff_t>(i));
    sec_versions_.erase(sec_versions_.begin() + static_cast<std::ptrdiff_t>(i));
    sec_tombstones_.emplace_back(v, key);
    trim_tombstones();
    return true;
  }
  return false;
}

std::size_t InMemoryStatusStore::expire_sys_older_than(std::uint64_t cutoff_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t kept = 0;
  std::vector<SysKey> removed_keys;
  for (std::size_t i = 0; i < sys_.size(); ++i) {
    if (sys_[i].updated_ns < cutoff_ns) {
      removed_keys.push_back(sys_key_of(sys_[i]));
      continue;
    }
    if (kept != i) {
      sys_[kept] = sys_[i];
      sys_versions_[kept] = sys_versions_[i];
    }
    ++kept;
  }
  std::size_t removed = sys_.size() - kept;
  if (removed == 0) return 0;
  sys_.resize(kept);
  sys_versions_.resize(kept);
  std::uint64_t v = next_version();
  for (const SysKey& key : removed_keys) {
    sys_tombstones_.emplace_back(v, key);
  }
  trim_tombstones();
  newest_sys_ = recompute_newest_sys();
  return removed;
}

void InMemoryStatusStore::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t v = next_version();
  bump_epoch(v);
  sys_.clear();
  net_.clear();
  sec_.clear();
  sys_versions_.clear();
  net_versions_.clear();
  sec_versions_.clear();
  newest_sys_ = 0;
}

SnapshotPtr InMemoryStatusStore::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!cached_snapshot_) {
    auto snap = std::make_shared<Snapshot>();
    snap->version = version_.load(std::memory_order_acquire);
    snap->epoch = epoch_;
    snap->delta_capable = true;
    snap->delta_floor = delta_floor_;
    snap->newest_sys_update_ns = newest_sys_;
    snap->sys = sys_;
    snap->net = net_;
    snap->sec = sec_;
    snap->sys_versions = sys_versions_;
    snap->net_versions = net_versions_;
    snap->sec_versions = sec_versions_;
    snap->sys_tombstones.assign(sys_tombstones_.begin(), sys_tombstones_.end());
    snap->net_tombstones.assign(net_tombstones_.begin(), net_tombstones_.end());
    snap->sec_tombstones.assign(sec_tombstones_.begin(), sec_tombstones_.end());
    cached_snapshot_ = std::move(snap);
  }
  return cached_snapshot_;
}

std::uint64_t InMemoryStatusStore::newest_sys_update_ns() const {
  std::lock_guard<std::mutex> lock(mu_);
  return newest_sys_;
}

}  // namespace smartsock::ipc
