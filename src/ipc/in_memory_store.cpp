#include "ipc/in_memory_store.h"

#include <algorithm>
#include <cstring>

namespace smartsock::ipc {

bool InMemoryStatusStore::put_sys(const SysRecord& record) {
  std::lock_guard<std::mutex> lock(mu_);
  version_.fetch_add(1, std::memory_order_acq_rel);
  for (SysRecord& existing : sys_) {
    if (std::strncmp(existing.address, record.address, kAddressLen) == 0) {
      existing = record;
      return true;
    }
  }
  sys_.push_back(record);
  return true;
}

bool InMemoryStatusStore::put_net(const NetRecord& record) {
  std::lock_guard<std::mutex> lock(mu_);
  version_.fetch_add(1, std::memory_order_acq_rel);
  for (NetRecord& existing : net_) {
    if (std::strncmp(existing.from_group, record.from_group, kGroupLen) == 0 &&
        std::strncmp(existing.to_group, record.to_group, kGroupLen) == 0) {
      existing = record;
      return true;
    }
  }
  net_.push_back(record);
  return true;
}

bool InMemoryStatusStore::put_sec(const SecRecord& record) {
  std::lock_guard<std::mutex> lock(mu_);
  version_.fetch_add(1, std::memory_order_acq_rel);
  for (SecRecord& existing : sec_) {
    if (std::strncmp(existing.host, record.host, kHostNameLen) == 0) {
      existing = record;
      return true;
    }
  }
  sec_.push_back(record);
  return true;
}

std::vector<SysRecord> InMemoryStatusStore::sys_records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sys_;
}

std::vector<NetRecord> InMemoryStatusStore::net_records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return net_;
}

std::vector<SecRecord> InMemoryStatusStore::sec_records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sec_;
}

void InMemoryStatusStore::replace_sys(const std::vector<SysRecord>& records) {
  std::lock_guard<std::mutex> lock(mu_);
  version_.fetch_add(1, std::memory_order_acq_rel);
  sys_ = records;
}

void InMemoryStatusStore::replace_net(const std::vector<NetRecord>& records) {
  std::lock_guard<std::mutex> lock(mu_);
  version_.fetch_add(1, std::memory_order_acq_rel);
  net_ = records;
}

void InMemoryStatusStore::replace_sec(const std::vector<SecRecord>& records) {
  std::lock_guard<std::mutex> lock(mu_);
  version_.fetch_add(1, std::memory_order_acq_rel);
  sec_ = records;
}

std::size_t InMemoryStatusStore::expire_sys_older_than(std::uint64_t cutoff_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t before = sys_.size();
  sys_.erase(std::remove_if(sys_.begin(), sys_.end(),
                            [&](const SysRecord& r) { return r.updated_ns < cutoff_ns; }),
             sys_.end());
  std::size_t removed = before - sys_.size();
  if (removed > 0) version_.fetch_add(1, std::memory_order_acq_rel);
  return removed;
}

std::uint64_t InMemoryStatusStore::newest_sys_update_ns() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t newest = 0;
  for (const SysRecord& record : sys_) {
    if (record.updated_ns > newest) newest = record.updated_ns;
  }
  return newest;
}

void InMemoryStatusStore::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  version_.fetch_add(1, std::memory_order_acq_rel);
  sys_.clear();
  net_.clear();
  sec_.clear();
}

}  // namespace smartsock::ipc
