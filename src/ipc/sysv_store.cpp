#include "ipc/sysv_store.h"

#include <sys/ipc.h>
#include <sys/sem.h>
#include <sys/shm.h>

#include <cstring>

#include "util/logging.h"

namespace smartsock::ipc {

namespace {

constexpr std::uint32_t kMagic = 0x534d5233;  // "SMR3" — SMR2 + newest_updated_ns

struct SegmentHeader {
  std::uint32_t magic;
  std::uint32_t record_size;
  std::uint32_t capacity;
  std::uint32_t count;
  // Mutation counter backing StatusStore::version(); lives in the segment so
  // every attached process observes other writers' updates. The trailing pad
  // keeps the record array 8-byte aligned for the double-heavy records.
  std::uint32_t version;
  std::uint32_t pad;
  // Max updated_ns across stored records, maintained on every write so
  // newest_sys_update_ns() is a header read instead of a full scan. Only
  // meaningful for the sys segment (0 elsewhere).
  std::uint64_t newest_updated_ns;
};
static_assert(sizeof(SegmentHeader) % alignof(double) == 0);

// semop helpers: one counting semaphore used as a mutex, SEM_UNDO so a
// crashed holder does not deadlock the segment.
bool sem_lock(int sem_id) {
  sembuf op{0, -1, SEM_UNDO};
  return ::semop(sem_id, &op, 1) == 0;
}
bool sem_unlock(int sem_id) {
  sembuf op{0, 1, SEM_UNDO};
  return ::semop(sem_id, &op, 1) == 0;
}

}  // namespace

struct SysVStatusStore::Region {
  int shm_id = -1;
  int sem_id = -1;
  void* base = nullptr;
  std::size_t record_size = 0;
  std::size_t capacity = 0;
  bool created = false;

  ~Region() {
    if (base) ::shmdt(base);
  }

  SegmentHeader* header() { return static_cast<SegmentHeader*>(base); }
  const SegmentHeader* header() const { return static_cast<const SegmentHeader*>(base); }
  char* records() { return static_cast<char*>(base) + sizeof(SegmentHeader); }
  const char* records() const {
    return static_cast<const char*>(base) + sizeof(SegmentHeader);
  }

  static std::unique_ptr<Region> open(int key, std::size_t record_size, std::size_t capacity) {
    auto region = std::make_unique<Region>();
    region->record_size = record_size;
    region->capacity = capacity;
    std::size_t bytes = sizeof(SegmentHeader) + record_size * capacity;

    int shm_id = ::shmget(key, bytes, IPC_CREAT | IPC_EXCL | 0600);
    bool fresh = shm_id >= 0;
    if (shm_id < 0 && errno == EEXIST) {
      shm_id = ::shmget(key, bytes, 0600);
    }
    if (shm_id < 0) return nullptr;
    region->shm_id = shm_id;
    region->created = fresh;

    int sem_id = ::semget(key, 1, IPC_CREAT | IPC_EXCL | 0600);
    if (sem_id >= 0) {
      // Fresh semaphore: initialize to 1 (unlocked).
      if (::semctl(sem_id, 0, SETVAL, 1) != 0) return nullptr;
    } else if (errno == EEXIST) {
      sem_id = ::semget(key, 1, 0600);
      if (sem_id < 0) return nullptr;
    } else {
      return nullptr;
    }
    region->sem_id = sem_id;

    void* base = ::shmat(shm_id, nullptr, 0);
    if (base == reinterpret_cast<void*>(-1)) return nullptr;
    region->base = base;

    if (fresh) {
      if (!sem_lock(sem_id)) return nullptr;
      SegmentHeader* header = region->header();
      header->magic = kMagic;
      header->record_size = static_cast<std::uint32_t>(record_size);
      header->capacity = static_cast<std::uint32_t>(capacity);
      header->count = 0;
      header->version = 0;
      header->pad = 0;
      header->newest_updated_ns = 0;
      sem_unlock(sem_id);
    } else {
      const SegmentHeader* header = region->header();
      if (header->magic != kMagic || header->record_size != record_size ||
          header->capacity != capacity) {
        SMARTSOCK_LOG(kError, "sysv_store")
            << "segment layout mismatch for key " << key << " — stale segment?";
        return nullptr;
      }
    }
    return region;
  }
};

namespace {

// Generic keyed upsert over a locked region. `KeyEq` compares a stored
// record with the incoming one.
template <typename Record, typename KeyEq>
bool region_put(SysVStatusStore::Region* region, const Record& record, KeyEq key_eq);

template <typename Record>
std::vector<Record> region_read(const SysVStatusStore::Region* region);

template <typename Record>
void region_replace(SysVStatusStore::Region* region, const std::vector<Record>& records);

}  // namespace

// Out-of-line template helpers need the full Region type.
namespace {

// Recomputes the sys segment's newest_updated_ns from its slots (caller
// holds the semaphore). Capacity is small (~128), so the rescan on the rare
// backwards-timestamp path costs less than one region_read.
void refresh_newest(SegmentHeader* header, const SysRecord* slots) {
  std::uint64_t newest = 0;
  for (std::uint32_t i = 0; i < header->count; ++i) {
    if (slots[i].updated_ns > newest) newest = slots[i].updated_ns;
  }
  header->newest_updated_ns = newest;
}

template <typename Record, typename KeyEq>
bool region_put(SysVStatusStore::Region* region, const Record& record, KeyEq key_eq) {
  if (!region || !region->base) return false;
  if (!sem_lock(region->sem_id)) return false;
  auto* header = region->header();
  auto* slots = reinterpret_cast<Record*>(region->records());
  bool stored = false;
  for (std::uint32_t i = 0; i < header->count; ++i) {
    if (key_eq(slots[i], record)) {
      slots[i] = record;
      stored = true;
      break;
    }
  }
  if (!stored && header->count < header->capacity) {
    slots[header->count++] = record;
    stored = true;
  }
  if (stored) ++header->version;
  if constexpr (std::is_same_v<Record, SysRecord>) {
    if (stored) {
      if (record.updated_ns >= header->newest_updated_ns) {
        header->newest_updated_ns = record.updated_ns;
      } else {
        // The overwritten slot may have held the max; rescan to shrink it.
        refresh_newest(header, slots);
      }
    }
  }
  sem_unlock(region->sem_id);
  return stored;
}

template <typename Record>
std::vector<Record> region_read(const SysVStatusStore::Region* region) {
  std::vector<Record> out;
  if (!region || !region->base) return out;
  if (!sem_lock(region->sem_id)) return out;
  const auto* header = region->header();
  const auto* slots = reinterpret_cast<const Record*>(region->records());
  out.assign(slots, slots + header->count);
  sem_unlock(region->sem_id);
  return out;
}

template <typename Record>
void region_replace(SysVStatusStore::Region* region, const std::vector<Record>& records) {
  if (!region || !region->base) return;
  if (!sem_lock(region->sem_id)) return;
  auto* header = region->header();
  auto* slots = reinterpret_cast<Record*>(region->records());
  std::uint32_t n = static_cast<std::uint32_t>(
      std::min<std::size_t>(records.size(), header->capacity));
  for (std::uint32_t i = 0; i < n; ++i) slots[i] = records[i];
  header->count = n;
  ++header->version;
  if constexpr (std::is_same_v<Record, SysRecord>) {
    refresh_newest(header, slots);
  }
  sem_unlock(region->sem_id);
}

}  // namespace

std::unique_ptr<SysVStatusStore> SysVStatusStore::create(const SysVKeys& keys,
                                                         std::size_t sys_capacity,
                                                         std::size_t net_capacity,
                                                         std::size_t sec_capacity) {
  auto store = std::unique_ptr<SysVStatusStore>(new SysVStatusStore());
  store->sys_region_ = Region::open(keys.sys_key, sizeof(SysRecord), sys_capacity);
  store->net_region_ = Region::open(keys.net_key, sizeof(NetRecord), net_capacity);
  store->sec_region_ = Region::open(keys.sec_key, sizeof(SecRecord), sec_capacity);
  if (!store->sys_region_ || !store->net_region_ || !store->sec_region_) {
    return nullptr;
  }
  return store;
}

SysVStatusStore::~SysVStatusStore() = default;

bool SysVStatusStore::put_sys(const SysRecord& record) {
  return region_put(sys_region_.get(), record, [](const SysRecord& a, const SysRecord& b) {
    return std::strncmp(a.address, b.address, kAddressLen) == 0;
  });
}

bool SysVStatusStore::put_net(const NetRecord& record) {
  return region_put(net_region_.get(), record, [](const NetRecord& a, const NetRecord& b) {
    return std::strncmp(a.from_group, b.from_group, kGroupLen) == 0 &&
           std::strncmp(a.to_group, b.to_group, kGroupLen) == 0;
  });
}

bool SysVStatusStore::put_sec(const SecRecord& record) {
  return region_put(sec_region_.get(), record, [](const SecRecord& a, const SecRecord& b) {
    return std::strncmp(a.host, b.host, kHostNameLen) == 0;
  });
}

std::vector<SysRecord> SysVStatusStore::sys_records() const {
  return region_read<SysRecord>(sys_region_.get());
}

std::vector<NetRecord> SysVStatusStore::net_records() const {
  return region_read<NetRecord>(net_region_.get());
}

std::vector<SecRecord> SysVStatusStore::sec_records() const {
  return region_read<SecRecord>(sec_region_.get());
}

void SysVStatusStore::replace_sys(const std::vector<SysRecord>& records) {
  region_replace(sys_region_.get(), records);
}

void SysVStatusStore::replace_net(const std::vector<NetRecord>& records) {
  region_replace(net_region_.get(), records);
}

void SysVStatusStore::replace_sec(const std::vector<SecRecord>& records) {
  region_replace(sec_region_.get(), records);
}

std::size_t SysVStatusStore::expire_sys_older_than(std::uint64_t cutoff_ns) {
  Region* region = sys_region_.get();
  if (!region || !region->base) return 0;
  if (!sem_lock(region->sem_id)) return 0;
  auto* header = region->header();
  auto* slots = reinterpret_cast<SysRecord*>(region->records());
  std::uint32_t kept = 0;
  for (std::uint32_t i = 0; i < header->count; ++i) {
    if (slots[i].updated_ns >= cutoff_ns) {
      if (kept != i) slots[kept] = slots[i];
      ++kept;
    }
  }
  std::size_t removed = header->count - kept;
  header->count = kept;
  if (removed > 0) {
    ++header->version;
    refresh_newest(header, slots);
  }
  sem_unlock(region->sem_id);
  return removed;
}

void SysVStatusStore::clear() {
  for (Region* region : {sys_region_.get(), net_region_.get(), sec_region_.get()}) {
    if (!region || !region->base) continue;
    if (!sem_lock(region->sem_id)) continue;
    region->header()->count = 0;
    ++region->header()->version;
    region->header()->newest_updated_ns = 0;
    sem_unlock(region->sem_id);
  }
}

std::uint64_t SysVStatusStore::version() const {
  // Sum of the three per-segment counters: any single mutation changes the
  // sum. Read under each segment's semaphore so a concurrent writer's bump
  // is not torn.
  std::uint64_t total = 0;
  for (const Region* region :
       {sys_region_.get(), net_region_.get(), sec_region_.get()}) {
    if (!region || !region->base) continue;
    if (!sem_lock(region->sem_id)) continue;
    total += region->header()->version;
    sem_unlock(region->sem_id);
  }
  return total;
}

std::uint64_t SysVStatusStore::newest_sys_update_ns() const {
  const Region* region = sys_region_.get();
  if (!region || !region->base) return 0;
  if (!sem_lock(region->sem_id)) return 0;
  std::uint64_t newest = region->header()->newest_updated_ns;
  sem_unlock(region->sem_id);
  return newest;
}

void SysVStatusStore::remove_system_objects(const SysVKeys& keys) {
  for (int key : {keys.sys_key, keys.net_key, keys.sec_key}) {
    int shm_id = ::shmget(key, 0, 0600);
    if (shm_id >= 0) ::shmctl(shm_id, IPC_RMID, nullptr);
    int sem_id = ::semget(key, 1, 0600);
    if (sem_id >= 0) ::semctl(sem_id, 0, IPC_RMID);
  }
}

}  // namespace smartsock::ipc
