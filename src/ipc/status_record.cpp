#include "ipc/status_record.h"

#include <algorithm>

namespace smartsock::ipc {

void copy_fixed(char* dst, std::size_t capacity, const std::string& src) {
  std::size_t n = std::min(src.size(), capacity - 1);
  std::memcpy(dst, src.data(), n);
  std::memset(dst + n, 0, capacity - n);
}

std::string read_fixed(const char* src, std::size_t capacity) {
  std::size_t len = 0;
  while (len < capacity && src[len] != '\0') ++len;
  return std::string(src, len);
}

}  // namespace smartsock::ipc
