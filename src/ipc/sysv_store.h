// System V shared-memory status store (§3.2.2, §4.2, Table 4.3).
//
// Faithful to the thesis: each database lives in its own SysV shared-memory
// segment guarded by a SysV semaphore under the *same key* ("The keys we
// assign for both semaphores and shared memories are the same for one type
// of records"). The monitor-machine keys are 1234/1235/1236 and the
// wizard-machine keys 4321/5321/6321; both key sets coexist on one box.
//
// Sandboxed environments may deny shmget/semget — create() then returns
// nullptr and callers fall back to InMemoryStatusStore. The records are
// trivially copyable, so segments hold them as flat arrays behind a small
// header.
#pragma once

#include <memory>

#include "ipc/status_store.h"

namespace smartsock::ipc {

/// The thesis's key assignments (Table 4.3).
struct SysVKeys {
  int sys_key = 0;
  int net_key = 0;
  int sec_key = 0;

  static SysVKeys monitor_machine() { return {1234, 1235, 1236}; }
  static SysVKeys wizard_machine() { return {4321, 5321, 6321}; }
};

class SysVStatusStore final : public StatusStore {
 public:
  /// Creates or attaches the three segments/semaphores. Returns nullptr if
  /// the kernel refuses SysV IPC (common in sandboxes/containers).
  static std::unique_ptr<SysVStatusStore> create(const SysVKeys& keys,
                                                 std::size_t sys_capacity = 128,
                                                 std::size_t net_capacity = 256,
                                                 std::size_t sec_capacity = 128);

  ~SysVStatusStore() override;

  SysVStatusStore(const SysVStatusStore&) = delete;
  SysVStatusStore& operator=(const SysVStatusStore&) = delete;

  bool put_sys(const SysRecord& record) override;
  bool put_net(const NetRecord& record) override;
  bool put_sec(const SecRecord& record) override;

  std::vector<SysRecord> sys_records() const override;
  std::vector<NetRecord> net_records() const override;
  std::vector<SecRecord> sec_records() const override;

  void replace_sys(const std::vector<SysRecord>& records) override;
  void replace_net(const std::vector<NetRecord>& records) override;
  void replace_sec(const std::vector<SecRecord>& records) override;

  std::size_t expire_sys_older_than(std::uint64_t cutoff_ns) override;
  void clear() override;

  /// Sum of the three segments' shared-memory mutation counters, so writers
  /// in other processes invalidate this process's cached replies too.
  std::uint64_t version() const override;

  /// Header read (the max is maintained on every sys write) instead of the
  /// base class's copy-out-and-scan.
  std::uint64_t newest_sys_update_ns() const override;

  /// Destroys the kernel objects (IPC_RMID). After this every attached
  /// store is invalid; used by tests and administrative teardown.
  static void remove_system_objects(const SysVKeys& keys);

  struct Region;  // one segment + semaphore (implementation detail, exposed
                  // only as an incomplete type for the .cpp's helpers)

 private:
  SysVStatusStore() = default;

  std::unique_ptr<Region> sys_region_;
  std::unique_ptr<Region> net_region_;
  std::unique_ptr<Region> sec_region_;
};

}  // namespace smartsock::ipc
