#include "sim/sim_procfs.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace smartsock::sim {

namespace {
constexpr double kUserHz = 100.0;  // jiffies per second

// Kernel loadavg exponential-decay update toward the offered load.
double relax(double current, double target, double dt_seconds, double tau_seconds) {
  double alpha = 1.0 - std::exp(-dt_seconds / tau_seconds);
  return current + (target - current) * alpha;
}

std::string format_line(const char* fmt, auto... args) {
  char buf[512];
  std::snprintf(buf, sizeof(buf), fmt, args...);
  return buf;
}
}  // namespace

SimProcFs::SimProcFs(std::string hostname, double bogomips, std::uint64_t memory_total_bytes)
    : hostname_(std::move(hostname)), bogomips_(bogomips), memory_total_(memory_total_bytes) {
  // Start with a small idle history so rates are computable immediately.
  cpu_idle_ = 100;
}

SimProcFs::SimProcFs(SimProcFs&& other) noexcept {
  std::lock_guard<std::mutex> lock(other.mutex_);
  hostname_ = std::move(other.hostname_);
  bogomips_ = other.bogomips_;
  memory_total_ = other.memory_total_;
  activity_ = other.activity_;
  load1_ = other.load1_;
  load5_ = other.load5_;
  load15_ = other.load15_;
  cpu_user_ = other.cpu_user_;
  cpu_nice_ = other.cpu_nice_;
  cpu_system_ = other.cpu_system_;
  cpu_idle_ = other.cpu_idle_;
  disk_rreq_ = other.disk_rreq_;
  disk_wreq_ = other.disk_wreq_;
  disk_rblocks_ = other.disk_rblocks_;
  disk_wblocks_ = other.disk_wblocks_;
  net_rbytes_ = other.net_rbytes_;
  net_rpackets_ = other.net_rpackets_;
  net_tbytes_ = other.net_tbytes_;
  net_tpackets_ = other.net_tpackets_;
  cpu_frac_busy_ = other.cpu_frac_busy_;
  cpu_frac_idle_ = other.cpu_frac_idle_;
  disk_frac_r_ = other.disk_frac_r_;
  disk_frac_w_ = other.disk_frac_w_;
}

void SimProcFs::tick(double dt_seconds) {
  if (dt_seconds <= 0.0) return;
  std::lock_guard<std::mutex> lock(mutex_);

  load1_ = relax(load1_, activity_.offered_load, dt_seconds, 60.0);
  load5_ = relax(load5_, activity_.offered_load, dt_seconds, 300.0);
  load15_ = relax(load15_, activity_.offered_load, dt_seconds, 900.0);

  double busy = std::clamp(activity_.cpu_busy_fraction, 0.0, 1.0);
  double busy_jiffies = busy * kUserHz * dt_seconds + cpu_frac_busy_;
  double idle_jiffies = (1.0 - busy) * kUserHz * dt_seconds + cpu_frac_idle_;
  auto busy_whole = static_cast<std::uint64_t>(busy_jiffies);
  auto idle_whole = static_cast<std::uint64_t>(idle_jiffies);
  cpu_frac_busy_ = busy_jiffies - static_cast<double>(busy_whole);
  cpu_frac_idle_ = idle_jiffies - static_cast<double>(idle_whole);

  double system_share = std::clamp(activity_.cpu_system_share, 0.0, 1.0);
  auto system_jiffies = static_cast<std::uint64_t>(static_cast<double>(busy_whole) * system_share);
  cpu_system_ += system_jiffies;
  cpu_user_ += busy_whole - system_jiffies;
  cpu_idle_ += idle_whole;

  double rreq = activity_.disk_read_reqps * dt_seconds + disk_frac_r_;
  double wreq = activity_.disk_write_reqps * dt_seconds + disk_frac_w_;
  auto rreq_whole = static_cast<std::uint64_t>(rreq);
  auto wreq_whole = static_cast<std::uint64_t>(wreq);
  disk_frac_r_ = rreq - static_cast<double>(rreq_whole);
  disk_frac_w_ = wreq - static_cast<double>(wreq_whole);
  disk_rreq_ += rreq_whole;
  disk_wreq_ += wreq_whole;
  disk_rblocks_ += static_cast<std::uint64_t>(static_cast<double>(rreq_whole) *
                                              activity_.disk_blocks_per_req);
  disk_wblocks_ += static_cast<std::uint64_t>(static_cast<double>(wreq_whole) *
                                              activity_.disk_blocks_per_req);

  net_rbytes_ += static_cast<std::uint64_t>(activity_.net_rx_bytesps * dt_seconds);
  net_tbytes_ += static_cast<std::uint64_t>(activity_.net_tx_bytesps * dt_seconds);
  double pkt = std::max(1.0, activity_.net_packet_bytes);
  net_rpackets_ += static_cast<std::uint64_t>(activity_.net_rx_bytesps * dt_seconds / pkt);
  net_tpackets_ += static_cast<std::uint64_t>(activity_.net_tx_bytesps * dt_seconds / pkt);
}

std::string SimProcFs::render_loadavg() const {
  std::lock_guard<std::mutex> lock(mutex_);
  int running = 1 + static_cast<int>(load1_ + 0.5);
  return format_line("%.2f %.2f %.2f %d/%d %d\n", load1_, load5_, load15_, running,
                     80 + running, 4242);
}

std::string SimProcFs::render_stat() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  out += format_line("cpu  %llu %llu %llu %llu\n",
                     static_cast<unsigned long long>(cpu_user_),
                     static_cast<unsigned long long>(cpu_nice_),
                     static_cast<unsigned long long>(cpu_system_),
                     static_cast<unsigned long long>(cpu_idle_));
  out += format_line("cpu0 %llu %llu %llu %llu\n",
                     static_cast<unsigned long long>(cpu_user_),
                     static_cast<unsigned long long>(cpu_nice_),
                     static_cast<unsigned long long>(cpu_system_),
                     static_cast<unsigned long long>(cpu_idle_));
  // Linux 2.4 disk_io format: (major,disk):(allreq,rreq,rblocks,wreq,wblocks)
  unsigned long long allreq = static_cast<unsigned long long>(disk_rreq_ + disk_wreq_);
  out += format_line("disk_io: (8,0):(%llu,%llu,%llu,%llu,%llu)\n", allreq,
                     static_cast<unsigned long long>(disk_rreq_),
                     static_cast<unsigned long long>(disk_rblocks_),
                     static_cast<unsigned long long>(disk_wreq_),
                     static_cast<unsigned long long>(disk_wblocks_));
  out += "ctxt 123456\nbtime 1000000000\nprocesses 4242\n";
  return out;
}

std::string SimProcFs::render_meminfo() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t used = std::min(activity_.memory_used_bytes, memory_total_);
  std::uint64_t free = memory_total_ - used;
  // The 2.4-era byte table the thesis reads (Table 4.1 shows this layout),
  // followed by the kB summary lines newer parsers expect.
  std::string out;
  out += "        total:    used:    free:  shared: buffers:  cached:\n";
  out += format_line("Mem:  %llu %llu %llu %llu %llu %llu\n",
                     static_cast<unsigned long long>(memory_total_),
                     static_cast<unsigned long long>(used),
                     static_cast<unsigned long long>(free), 0ull, 0ull, 0ull);
  out += format_line("Swap: %llu %llu %llu\n", 536870912ull, 0ull, 536870912ull);
  out += format_line("MemTotal: %10llu kB\n",
                     static_cast<unsigned long long>(memory_total_ / 1024));
  out += format_line("MemFree:  %10llu kB\n", static_cast<unsigned long long>(free / 1024));
  return out;
}

std::string SimProcFs::render_netdev() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  out += "Inter-|   Receive                                                |  Transmit\n";
  out +=
      " face |bytes    packets errs drop fifo frame compressed multicast|bytes    packets errs "
      "drop fifo colls carrier compressed\n";
  out += format_line(
      "    lo: %llu %llu    0    0    0     0          0         0 %llu %llu    0    0    0   "
      "  0       0          0\n",
      1234ull, 10ull, 1234ull, 10ull);
  out += format_line(
      "  eth0: %llu %llu    0    0    0     0          0         0 %llu %llu    0    0    0   "
      "  0       0          0\n",
      static_cast<unsigned long long>(net_rbytes_),
      static_cast<unsigned long long>(net_rpackets_),
      static_cast<unsigned long long>(net_tbytes_),
      static_cast<unsigned long long>(net_tpackets_));
  return out;
}

std::string SimProcFs::render_cpuinfo() const {
  std::string out;
  out += "processor\t: 0\n";
  out += format_line("model name\t: Simulated CPU (%s)\n", hostname_.c_str());
  out += format_line("bogomips\t: %.2f\n", bogomips_);
  return out;
}

}  // namespace smartsock::sim
