// The thesis's testbed, reconstructed (Table 5.1 / Fig 5.1 / Table 3.2).
//
// Eleven Linux machines in six network segments. Hardware identity (CPU,
// bogomips, RAM) comes straight from Table 5.1. `matmul_mflops` is the one
// calibrated quantity: Fig 5.2's benchmark shows the P3-866 (high cache/FSB
// efficiency for the thesis's vector-multiply loop) and P4-2.4 machines
// outperform the P4 1.6-1.8 GHz boxes, so the effective matmul throughput is
// *not* monotone in clock rate — we encode the measured ranking, not the
// spec sheet.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sim/network_path.h"
#include "sim/sim_procfs.h"

namespace smartsock::sim {

struct HostSpec {
  std::string name;
  std::string cpu_model;
  double bogomips = 0.0;
  int ram_mb = 0;
  std::string os;
  int segment = 0;          // index into testbed segments (Fig 5.1)
  double matmul_mflops = 0; // calibrated effective matmul throughput
};

/// The 11 machines of Table 5.1.
const std::vector<HostSpec>& paper_hosts();

/// Looks up a paper host by name.
std::optional<HostSpec> find_paper_host(const std::string& name);

/// massd server groups (§5.3.2): group-1 = {mimas, telesto, lhost},
/// group-2 = {dione, titan-x, pandora-x}.
const std::vector<std::string>& massd_group(int group);

/// The 6 sample WAN/LAN paths of Table 3.2, with base RTT from the thesis's
/// ping column and jitter chosen to reproduce Fig 3.6's visibility rule
/// (threshold only visible when base RTT is sub-millisecond and stable).
struct SamplePath {
  char index;               // 'a'..'f'
  std::string description;
  PathConfig config;
};
const std::vector<SamplePath>& sample_paths();

/// Path used throughout §3.3.2's packet-size experiments: the 100 Mbps
/// campus path sagit→suna with ~95 Mbps available and Speed_init ≈ 25 Mbps.
PathConfig sagit_to_suna(int mtu_bytes = 1500);

/// A full simulated host: procfs state plus its spec.
class SimHost {
 public:
  explicit SimHost(HostSpec spec);

  const HostSpec& spec() const { return spec_; }
  SimProcFs& procfs() { return procfs_; }
  const SimProcFs& procfs() const { return procfs_; }

  /// Idle activity profile with a light OS background noise level.
  void set_idle();

  /// Applies the SuperPI-like workload (Table 4.1 / §5.3.1 experiment 4):
  /// ~150 MB resident, CPU pinned, load above 1.
  void set_superpi_workload();

 private:
  HostSpec spec_;
  SimProcFs procfs_;
};

/// Builds the 11 SimHosts in Table 5.1 order.
std::vector<SimHost> build_paper_testbed();

}  // namespace smartsock::sim
