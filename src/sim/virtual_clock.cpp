#include "sim/virtual_clock.h"

#include <thread>

namespace smartsock::sim {

util::Duration VirtualClock::now() {
  std::lock_guard<std::mutex> lock(mu_);
  return now_;
}

void VirtualClock::advance(util::Duration d) {
  if (d <= util::Duration::zero()) return;
  std::lock_guard<std::mutex> lock(mu_);
  now_ += d;
}

void VirtualClock::sleep_for(util::Duration d) {
  if (d <= util::Duration::zero()) return;
  advance(d);
  if (scale_ > 0.0) {
    auto real = std::chrono::duration_cast<util::Duration>(
        std::chrono::duration<double>(util::to_seconds(d) * scale_));
    std::this_thread::sleep_for(real);
  }
}

}  // namespace smartsock::sim
