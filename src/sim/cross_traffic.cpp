#include "sim/cross_traffic.h"

#include <algorithm>

namespace smartsock::sim {

CrossTraffic::CrossTraffic(double utilization, double capacity_mbps, int mtu_bytes)
    : utilization_(std::clamp(utilization, 0.0, 0.99)) {
  // Time to clock one MTU frame onto the wire, in ms.
  mtu_transmission_ms_ = (mtu_bytes * 8.0) / (capacity_mbps * 1000.0);
}

double CrossTraffic::mean_delay_per_fragment_ms() const {
  if (utilization_ <= 0.0) return 0.0;
  return utilization_ / (1.0 - utilization_) * mtu_transmission_ms_;
}

double CrossTraffic::queueing_delay_ms(int fragments, util::Rng& rng) const {
  double mean = mean_delay_per_fragment_ms();
  if (mean <= 0.0 || fragments <= 0) return 0.0;
  double total = 0.0;
  for (int i = 0; i < fragments; ++i) {
    total += rng.exponential(mean);
  }
  return total;
}

}  // namespace smartsock::sim
