#include "sim/testbed.h"

#include <algorithm>

namespace smartsock::sim {

const std::vector<HostSpec>& paper_hosts() {
  // Table 5.1, with matmul_mflops calibrated to Fig 5.2's ranking:
  // P4-2.4 (dalmatian, dione) fastest, P3-866 (sagit, lhost) close behind,
  // P4 1.6-1.8 GHz machines slowest for this workload.
  static const std::vector<HostSpec> hosts = {
      {"sagit", "P3 866MHz", 1730.15, 128, "Debian 3.0r2", 0, 48.0},
      {"dalmatian", "P4 2.4GHz", 4771.02, 512, "Redhat 8.0", 1, 55.0},
      {"mimas", "P4 1.7GHz", 3394.76, 192, "Redhat 9.0", 1, 36.0},
      {"telesto", "P4 1.6GHz", 3185.04, 128, "Redhat 7.3", 2, 34.0},
      {"lhost", "P3 866MHz", 1730.15, 128, "Redhat 9.0", 2, 47.0},
      {"helene", "P4 1.7GHz", 3394.76, 256, "Redhat 9.0", 3, 37.0},
      {"phoebe", "P4 1.7GHz", 3394.76, 256, "Redhat 9.0", 3, 37.0},
      {"calypso", "P4 1.7GHz", 3394.76, 256, "Redhat 9.0", 4, 37.0},
      {"dione", "P4 2.4GHz", 4771.02, 512, "Redhat 7.3", 4, 54.0},
      {"titan-x", "P4 1.7GHz", 3394.76, 256, "Redhat 7.3", 5, 36.5},
      {"pandora-x", "P4 1.8GHz", 3591.37, 256, "Redhat 9.0", 5, 39.0},
  };
  return hosts;
}

std::optional<HostSpec> find_paper_host(const std::string& name) {
  const auto& hosts = paper_hosts();
  auto it = std::find_if(hosts.begin(), hosts.end(),
                         [&](const HostSpec& h) { return h.name == name; });
  if (it == hosts.end()) return std::nullopt;
  return *it;
}

const std::vector<std::string>& massd_group(int group) {
  static const std::vector<std::string> group1 = {"mimas", "telesto", "lhost"};
  static const std::vector<std::string> group2 = {"dione", "titan-x", "pandora-x"};
  static const std::vector<std::string> empty;
  if (group == 1) return group1;
  if (group == 2) return group2;
  return empty;
}

PathConfig sagit_to_suna(int mtu_bytes) {
  PathConfig config;
  config.name = "sagit->suna mtu=" + std::to_string(mtu_bytes);
  config.capacity_mbps = 100.0;
  config.utilization = 0.05;  // ~95 Mbps available, as pathload measured
  config.base_rtt_ms = 0.25;
  config.mtu_bytes = mtu_bytes;
  config.init_speed_mbps = 25.0;  // the thesis's Speed_init estimate
  config.has_init_stage = true;
  config.sys_overhead_ms = 0.05;
  config.net_overhead_ms = 0.05;
  config.jitter_stddev_ms = 0.008;
  config.seed = 20040615;
  return config;
}

const std::vector<SamplePath>& sample_paths() {
  static const std::vector<SamplePath> paths = [] {
    std::vector<SamplePath> out;

    auto make = [](char index, std::string description, double rtt_ms, double jitter_ms,
                   double utilization, bool physical) {
      PathConfig config;
      config.name = description;
      config.capacity_mbps = physical ? 100.0 : 1000.0;
      config.utilization = utilization;
      config.base_rtt_ms = rtt_ms;
      config.mtu_bytes = 1500;
      config.init_speed_mbps = 25.0;
      config.has_init_stage = physical;  // observation 1: no threshold on lo/virtual
      config.sys_overhead_ms = physical ? 0.05 : 0.005;
      config.net_overhead_ms = physical ? 0.05 : 0.0;
      config.jitter_stddev_ms = jitter_ms;
      config.seed = 97 + static_cast<std::uint64_t>(index);
      return SamplePath{index, std::move(description), config};
    };

    // Table 3.2: ping RTTs; WAN paths carry heavy jitter (observation 4 —
    // the MTU threshold is shadowed), LAN paths are clean.
    out.push_back(make('a', "sagit->tokxp (NUS to APAN Japan)", 126.0, 8.0, 0.35, true));
    out.push_back(make('b', "sagit->cmui (NUS to CMU USA)", 238.0, 12.0, 0.40, true));
    out.push_back(make('c', "sagit->ubin (local segment)", 0.262, 0.01, 0.05, true));
    out.push_back(make('d', "tokxp->jpfreebsd (APAN to ftp.jp)", 0.552, 0.02, 0.08, true));
    out.push_back(make('e', "helene->atlas (same switch)", 0.196, 0.005, 0.02, true));
    out.push_back(make('f', "sagit->localhost (loopback)", 0.041, 0.002, 0.0, false));
    return out;
  }();
  return paths;
}

SimHost::SimHost(HostSpec spec)
    : spec_(spec),
      procfs_(spec.name, spec.bogomips, static_cast<std::uint64_t>(spec.ram_mb) << 20) {
  set_idle();
}

void SimHost::set_idle() {
  HostActivity activity;
  activity.cpu_busy_fraction = 0.02;
  activity.cpu_system_share = 0.3;
  activity.offered_load = 0.05;
  activity.memory_used_bytes = 48ull << 20;  // resident OS + daemons
  activity.disk_read_reqps = 0.5;
  activity.disk_write_reqps = 0.5;
  activity.net_rx_bytesps = 200.0;
  activity.net_tx_bytesps = 200.0;
  procfs_.set_activity(activity);
}

void SimHost::set_superpi_workload() {
  // Table 4.1: Super_PI takes the machine from ~121 MB used to ~258 MB used;
  // §5.3.1(4): CPU swings 0-100%, load stays above 1.
  HostActivity activity = procfs_.activity();
  activity.cpu_busy_fraction = 0.95;
  activity.cpu_system_share = 0.05;
  activity.offered_load = 1.3;
  activity.memory_used_bytes += 150ull << 20;
  activity.disk_read_reqps = 4.0;
  activity.disk_write_reqps = 6.0;
  procfs_.set_activity(activity);
}

std::vector<SimHost> build_paper_testbed() {
  std::vector<SimHost> hosts;
  hosts.reserve(paper_hosts().size());
  for (const HostSpec& spec : paper_hosts()) {
    hosts.emplace_back(spec);
  }
  return hosts;
}

}  // namespace smartsock::sim
