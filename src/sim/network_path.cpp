#include "sim/network_path.h"

#include <algorithm>
#include <cmath>

namespace smartsock::sim {

namespace {
constexpr int kIpHeaderBytes = 20;
constexpr int kUdpHeaderBytes = 8;
}  // namespace

NetworkPath::NetworkPath(PathConfig config)
    : config_(std::move(config)),
      cross_(config_.utilization, config_.capacity_mbps, config_.mtu_bytes),
      rng_(config_.seed) {}

void NetworkPath::reseed(std::uint64_t seed) { rng_ = util::Rng(seed); }

int NetworkPath::fragments_for_payload(int payload_bytes) const {
  int datagram = payload_bytes + kUdpHeaderBytes;
  int per_fragment = config_.mtu_bytes - kIpHeaderBytes;
  if (per_fragment <= 0) return 1;
  return std::max(1, (datagram + per_fragment - 1) / per_fragment);
}

double NetworkPath::deterministic_rtt_ms(int payload_bytes) const {
  int fragments = fragments_for_payload(payload_bytes);
  double wire_bits = (payload_bytes + kUdpHeaderBytes + fragments * kIpHeaderBytes) * 8.0;

  // Serialization at the available bandwidth: Mbps == kbit/ms.
  double transfer_ms = wire_bits / (config_.available_bw_mbps() * 1000.0);

  // Interface initialization stage: first frame only (Formula 3.6).
  double init_ms = 0.0;
  if (config_.has_init_stage && config_.init_speed_mbps > 0.0) {
    double first_frame_bytes =
        std::min(payload_bytes + kUdpHeaderBytes + kIpHeaderBytes, config_.mtu_bytes);
    init_ms = first_frame_bytes * 8.0 / (config_.init_speed_mbps * 1000.0);
  }

  return transfer_ms + init_ms + config_.sys_overhead_ms + config_.net_overhead_ms +
         config_.base_rtt_ms;
}

double NetworkPath::probe_rtt_ms(int payload_bytes) {
  int fragments = fragments_for_payload(payload_bytes);
  double rtt = deterministic_rtt_ms(payload_bytes);
  rtt += cross_.queueing_delay_ms(fragments, rng_);
  if (config_.jitter_stddev_ms > 0.0) {
    rtt += std::abs(rng_.gaussian(0.0, config_.jitter_stddev_ms));
  }
  return rtt;
}

double NetworkPath::bulk_transfer_ms(std::uint64_t bytes) const {
  double bw = config_.available_bw_mbps();
  if (bw <= 0.0) return 0.0;
  return static_cast<double>(bytes) * 8.0 / (bw * 1000.0) + config_.base_rtt_ms;
}

}  // namespace smartsock::sim
