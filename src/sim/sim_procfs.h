// Simulated /proc filesystem for synthetic hosts.
//
// The thesis's probes read 5 procfs nodes (§4.1): /proc/loadavg, /proc/stat
// (cpu + disk_io), /proc/meminfo and /proc/net/dev. SimProcFs maintains the
// underlying counters for one simulated host and *renders genuine
// Linux-2.4-format procfs text*, so the very same parsing code the probe
// uses against a real kernel runs against simulated hosts.
//
// State evolves through tick(dt): cumulative counters (cpu jiffies, disk
// requests, interface bytes) advance at the currently configured rates, and
// the three load averages relax exponentially toward the offered load with
// the kernel's 1/5/15-minute time constants.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>

namespace smartsock::sim {

struct HostActivity {
  double cpu_busy_fraction = 0.0;   // [0,1] share of jiffies that are busy
  double cpu_system_share = 0.1;    // of the busy share, fraction in kernel
  double offered_load = 0.0;        // run-queue length the loadavg chases
  std::uint64_t memory_used_bytes = 64ull << 20;
  double disk_read_reqps = 0.0;     // read requests per second
  double disk_write_reqps = 0.0;
  double disk_blocks_per_req = 8.0;
  double net_rx_bytesps = 0.0;      // eth0 receive rate
  double net_tx_bytesps = 0.0;
  double net_packet_bytes = 512.0;  // avg packet size for packet counters
};

class SimProcFs {
 public:
  SimProcFs(std::string hostname, double bogomips, std::uint64_t memory_total_bytes);

  // Movable despite the mutex (SimHost lives in vectors): the source is
  // locked while its state is copied out; the mutex itself is not moved.
  SimProcFs(SimProcFs&& other) noexcept;
  SimProcFs& operator=(SimProcFs&&) = delete;
  SimProcFs(const SimProcFs&) = delete;
  SimProcFs& operator=(const SimProcFs&) = delete;

  /// Advances all counters by dt seconds of the configured activity.
  /// Thread-safe against concurrent renders and setters: the harness ticks
  /// from its own thread while each host's probe renders the procfs text.
  void tick(double dt_seconds);

  /// Replaces the activity profile (takes effect from the next tick).
  void set_activity(const HostActivity& activity) {
    std::lock_guard<std::mutex> lock(mutex_);
    activity_ = activity;
  }
  HostActivity activity() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return activity_;
  }

  // --- procfs renderings -------------------------------------------------
  std::string render_loadavg() const;   // /proc/loadavg
  std::string render_stat() const;      // /proc/stat (cpu + disk_io lines)
  std::string render_meminfo() const;   // /proc/meminfo (2.4-style byte table)
  std::string render_netdev() const;    // /proc/net/dev
  std::string render_cpuinfo() const;   // /proc/cpuinfo (bogomips line)

  // --- direct state access (for tests and the workload generator) --------
  const std::string& hostname() const { return hostname_; }
  double bogomips() const { return bogomips_; }
  double load1() const { return locked(load1_); }
  double load5() const { return locked(load5_); }
  double load15() const { return locked(load15_); }
  std::uint64_t memory_total() const { return memory_total_; }
  std::uint64_t memory_used() const { return locked(activity_.memory_used_bytes); }
  std::uint64_t cpu_user_jiffies() const { return locked(cpu_user_); }
  std::uint64_t cpu_idle_jiffies() const { return locked(cpu_idle_); }

 private:
  template <typename T>
  T locked(const T& value) const {
    std::lock_guard<std::mutex> lock(mutex_);
    return value;
  }

  std::string hostname_;   // immutable after construction, no lock
  double bogomips_;        // immutable after construction, no lock
  std::uint64_t memory_total_;  // immutable after construction, no lock

  // Guards everything below: tick() advances from the harness ticker thread
  // while probe threads render and tests read the scalars.
  mutable std::mutex mutex_;

  HostActivity activity_;

  // load averages
  double load1_ = 0.0;
  double load5_ = 0.0;
  double load15_ = 0.0;

  // cumulative jiffies (USER_HZ = 100)
  std::uint64_t cpu_user_ = 0;
  std::uint64_t cpu_nice_ = 0;
  std::uint64_t cpu_system_ = 0;
  std::uint64_t cpu_idle_ = 0;

  // cumulative disk_io counters
  std::uint64_t disk_rreq_ = 0;
  std::uint64_t disk_wreq_ = 0;
  std::uint64_t disk_rblocks_ = 0;
  std::uint64_t disk_wblocks_ = 0;

  // cumulative eth0 counters
  std::uint64_t net_rbytes_ = 0;
  std::uint64_t net_rpackets_ = 0;
  std::uint64_t net_tbytes_ = 0;
  std::uint64_t net_tpackets_ = 0;

  // fractional remainders so slow rates don't vanish under integer counters
  double cpu_frac_busy_ = 0.0;
  double cpu_frac_idle_ = 0.0;
  double disk_frac_r_ = 0.0;
  double disk_frac_w_ = 0.0;
};

}  // namespace smartsock::sim
