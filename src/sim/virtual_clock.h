// Virtual (simulated) clock.
//
// The network-path model and the matmul cost model run on virtual time so an
// 11-host experiment that took the thesis minutes of wall clock replays in
// milliseconds. sleep_for() advances the clock instantly; advance() is the
// explicit form. A scaled mode optionally maps virtual time onto real time
// (virtual_second * scale of real sleeping) for components that must overlap
// with real socket I/O.
#pragma once

#include <mutex>

#include "util/clock.h"

namespace smartsock::sim {

class VirtualClock final : public util::Clock {
 public:
  /// scale == 0: pure virtual time, sleep_for returns immediately.
  /// scale  > 0: each virtual second also burns `scale` real seconds, so
  /// virtual delays stay ordered relative to concurrent real I/O.
  explicit VirtualClock(double scale = 0.0) : scale_(scale) {}

  util::Duration now() override;
  void sleep_for(util::Duration d) override;

  /// Advances virtual time without any real sleeping.
  void advance(util::Duration d);

  double scale() const { return scale_; }

 private:
  mutable std::mutex mu_;
  util::Duration now_{0};
  double scale_;
};

}  // namespace smartsock::sim
