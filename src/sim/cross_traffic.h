// Cross-traffic / queueing-delay model for simulated network paths.
//
// The thesis's delay decomposition (Eq 3.3) attributes the variable part of
// RTT to queueing at the bottleneck. We model the queue as M/M/1-like: at
// utilization rho, a fragment arriving at the bottleneck waits an
// exponentially distributed time whose mean is rho/(1-rho) multiplied by one
// MTU's transmission time. Each additional fragment of a probe is one more
// independent chance for cross traffic to slip in between — exactly the
// reason the thesis's probe-size rules (§3.3.2) want the two probe sizes to
// fragment equally.
#pragma once

#include "util/rng.h"

namespace smartsock::sim {

class CrossTraffic {
 public:
  /// utilization in [0, 1): fraction of the bottleneck used by other flows.
  /// capacity_mbps and mtu_bytes describe the bottleneck link.
  CrossTraffic(double utilization, double capacity_mbps, int mtu_bytes);

  /// Queueing delay (ms) experienced by one probe consisting of `fragments`
  /// back-to-back link-layer frames.
  double queueing_delay_ms(int fragments, util::Rng& rng) const;

  /// Mean queueing delay per fragment (ms) — the deterministic component
  /// used by analytic checks in tests.
  double mean_delay_per_fragment_ms() const;

  double utilization() const { return utilization_; }

 private:
  double utilization_;
  double mtu_transmission_ms_;
};

}  // namespace smartsock::sim
