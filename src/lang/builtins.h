// Built-in math functions (thesis Appendix B.4: "exp, sin, cos, log10, ...").
//
// The set mirrors hoc's builtins, which the thesis's yacc grammar is built
// from ("BLTIN '(' expr ')'"). Domain errors (log of a negative, sqrt of a
// negative) are reported as evaluation errors rather than silently returning
// NaN — hoc's execerror behaves the same way.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace smartsock::lang {

struct BuiltinResult {
  bool ok = false;
  double value = 0.0;
  std::string error;  // set when !ok

  static BuiltinResult success(double v) { return {true, v, {}}; }
  static BuiltinResult failure(std::string message) { return {false, 0.0, std::move(message)}; }
};

/// True if `name` names a built-in function.
bool is_builtin(std::string_view name);

/// All builtin names, for documentation and fuzzing.
const std::vector<std::string>& builtin_names();

/// Applies builtin `name` to `argument`. Fails on unknown name or domain
/// error (the message names the function).
BuiltinResult call_builtin(std::string_view name, double argument);

/// Checked power operator (the '^' token). Fails on domain errors such as
/// negative base with fractional exponent.
BuiltinResult checked_pow(double base, double exponent);

}  // namespace smartsock::lang
