#include "lang/ast.h"

#include "util/strings.h"

namespace smartsock::lang {

bool is_logical_op(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAnd:
    case BinaryOp::kOr:
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

std::string_view binary_op_name(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kPow: return "^";
    case BinaryOp::kAnd: return "&&";
    case BinaryOp::kOr: return "||";
    case BinaryOp::kEq: return "==";
    case BinaryOp::kNe: return "!=";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
  }
  return "?";
}

std::unique_ptr<Expr> Expr::make_number(double value, int line) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kNumber;
  e->number = value;
  e->line = line;
  return e;
}

std::unique_ptr<Expr> Expr::make_netaddr(std::string text, int line) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kNetAddr;
  e->name = std::move(text);
  e->line = line;
  return e;
}

std::unique_ptr<Expr> Expr::make_var(std::string name, int line) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kVar;
  e->name = std::move(name);
  e->line = line;
  return e;
}

std::unique_ptr<Expr> Expr::make_assign(std::string target, std::unique_ptr<Expr> value,
                                        int line) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kAssign;
  e->name = std::move(target);
  e->children.push_back(std::move(value));
  e->line = line;
  return e;
}

std::unique_ptr<Expr> Expr::make_binary(BinaryOp op, std::unique_ptr<Expr> lhs,
                                        std::unique_ptr<Expr> rhs, int line) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->op = op;
  e->children.push_back(std::move(lhs));
  e->children.push_back(std::move(rhs));
  e->line = line;
  return e;
}

std::unique_ptr<Expr> Expr::make_unary_minus(std::unique_ptr<Expr> operand, int line) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kUnaryMinus;
  e->children.push_back(std::move(operand));
  e->line = line;
  return e;
}

std::unique_ptr<Expr> Expr::make_call(std::string function, std::unique_ptr<Expr> argument,
                                      int line) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kCall;
  e->name = std::move(function);
  e->children.push_back(std::move(argument));
  e->line = line;
  return e;
}

std::string Expr::to_string() const {
  switch (kind) {
    case ExprKind::kNumber:
      return util::format_double(number);
    case ExprKind::kNetAddr:
      return name;
    case ExprKind::kVar:
      return name;
    case ExprKind::kAssign:
      return "(" + name + " = " + children[0]->to_string() + ")";
    case ExprKind::kBinary:
      return "(" + children[0]->to_string() + " " + std::string(binary_op_name(op)) + " " +
             children[1]->to_string() + ")";
    case ExprKind::kUnaryMinus:
      return "(-" + children[0]->to_string() + ")";
    case ExprKind::kCall:
      return name + "(" + children[0]->to_string() + ")";
  }
  return "?";
}

}  // namespace smartsock::lang
