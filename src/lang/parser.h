// Recursive-descent parser for the requirement meta language.
//
// Grammar (precedence low to high, following the thesis's hoc-derived yacc
// rules in Fig 4.2):
//
//   program    := { statement NEWLINE }
//   statement  := expr
//   expr       := assignment | or_expr
//   assignment := IDENT '=' expr                     (right associative)
//   or_expr    := and_expr { '||' and_expr }
//   and_expr   := rel_expr { '&&' rel_expr }
//   rel_expr   := add_expr { ('=='|'!='|'<'|'<='|'>'|'>=') add_expr }
//   add_expr   := mul_expr { ('+'|'-') mul_expr }
//   mul_expr   := pow_expr { ('*'|'/') pow_expr }
//   pow_expr   := unary [ '^' pow_expr ]             (right associative)
//   unary      := '-' unary | primary
//   primary    := NUMBER | NETADDR | IDENT | IDENT '(' expr ')' | '(' expr ')'
#pragma once

#include <string>
#include <vector>

#include "lang/ast.h"
#include "lang/token.h"

namespace smartsock::lang {

struct ParseError {
  std::string message;
  int line = 0;
  int column = 0;

  std::string to_string() const {
    return "line " + std::to_string(line) + ":" + std::to_string(column) + ": " + message;
  }
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  /// Parses the whole token stream into a Program. Returns false and fills
  /// `error` on the first syntax error.
  bool parse(Program& out, ParseError& error);

  /// Convenience: lex + parse in one call.
  static bool parse_source(std::string_view source, Program& out, ParseError& error);

 private:
  const Token& peek(std::size_t ahead = 0) const;
  const Token& advance();
  bool match(TokenType type);
  bool check(TokenType type) const { return peek().type == type; }
  void fail(const std::string& message);

  std::unique_ptr<Expr> parse_expr();
  std::unique_ptr<Expr> parse_or();
  std::unique_ptr<Expr> parse_and();
  std::unique_ptr<Expr> parse_relational();
  std::unique_ptr<Expr> parse_additive();
  std::unique_ptr<Expr> parse_multiplicative();
  std::unique_ptr<Expr> parse_power();
  std::unique_ptr<Expr> parse_unary();
  std::unique_ptr<Expr> parse_primary();

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  bool failed_ = false;
  ParseError error_;
};

}  // namespace smartsock::lang
