// AST for the requirement meta language (thesis Fig 4.2 grammar).
//
// One Program is a list of Statements, one per input line. Each statement is
// an expression tree; whether a statement is *logical* (participates in the
// qualified/not-qualified decision) is a property of the evaluated tree — the
// thesis tracks a global `logic` flag set by the last operator executed,
// which for a tree evaluation is exactly the root operator, with parentheses
// explicitly transparent ("this op will not change logic value").
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace smartsock::lang {

enum class ExprKind : std::uint8_t {
  kNumber,    // literal
  kNetAddr,   // dotted-quad or dotted/hyphenated host name
  kVar,       // identifier reference (server var, constant, temp or UNDEF)
  kAssign,    // ident '=' expr
  kBinary,    // arithmetic / logical / relational
  kUnaryMinus,
  kCall,      // builtin '(' expr ')'
};

enum class BinaryOp : std::uint8_t {
  kAdd, kSub, kMul, kDiv, kPow,             // non-logical
  kAnd, kOr, kEq, kNe, kLt, kLe, kGt, kGe,  // logical
};

/// True for the operators the thesis classifies as logical (Fig 4.2 sets
/// logic = 1 for these).
bool is_logical_op(BinaryOp op);

/// Operator spelling for diagnostics and pretty-printing.
std::string_view binary_op_name(BinaryOp op);

struct Expr {
  ExprKind kind;
  // kNumber
  double number = 0.0;
  // kNetAddr / kVar / kAssign (target) / kCall (function name)
  std::string name;
  // kBinary
  BinaryOp op = BinaryOp::kAdd;
  // children: kBinary uses [0]=lhs,[1]=rhs; kAssign/kUnaryMinus/kCall use [0]
  std::vector<std::unique_ptr<Expr>> children;

  int line = 0;

  static std::unique_ptr<Expr> make_number(double value, int line);
  static std::unique_ptr<Expr> make_netaddr(std::string text, int line);
  static std::unique_ptr<Expr> make_var(std::string name, int line);
  static std::unique_ptr<Expr> make_assign(std::string target, std::unique_ptr<Expr> value,
                                           int line);
  static std::unique_ptr<Expr> make_binary(BinaryOp op, std::unique_ptr<Expr> lhs,
                                           std::unique_ptr<Expr> rhs, int line);
  static std::unique_ptr<Expr> make_unary_minus(std::unique_ptr<Expr> operand, int line);
  static std::unique_ptr<Expr> make_call(std::string function, std::unique_ptr<Expr> argument,
                                         int line);

  /// Source-like rendering (fully parenthesized) for diagnostics.
  std::string to_string() const;
};

struct Statement {
  std::unique_ptr<Expr> expr;
  int line = 0;
};

struct Program {
  std::vector<Statement> statements;

  bool empty() const { return statements.empty(); }
};

}  // namespace smartsock::lang
