// Compiled server requirement — the user-facing entry into the language.
//
// A Requirement is compiled once from the user's requirement file (§3.6.2)
// and then evaluated by the wizard against every candidate server's
// attribute set. The preferred/denied host lists are harvested with a
// server-independent pre-pass: the thesis's grammar evaluates both operands
// of '&&' unconditionally, so user-side assignments always execute no matter
// which server is under test.
#pragma once

#include <optional>
#include <string>

#include "lang/evaluator.h"
#include "lang/parser.h"

namespace smartsock::lang {

class Requirement {
 public:
  /// Compiles requirement text. On syntax errors returns nullopt and fills
  /// `error` with a line/column diagnostic.
  static std::optional<Requirement> compile(std::string_view source, std::string* error = nullptr);

  /// Loads the requirement from a file (the client library's input format).
  static std::optional<Requirement> load_file(const std::string& path,
                                              std::string* error = nullptr);

  /// Evaluates against one server's attributes.
  EvalOutcome evaluate(const AttributeSet& attrs) const;

  /// True if the server described by `attrs` qualifies.
  bool qualifies(const AttributeSet& attrs) const { return evaluate(attrs).qualified; }

  /// Hosts the user marked preferred/denied (server-independent).
  const std::vector<std::string>& preferred_hosts() const { return preferred_; }
  const std::vector<std::string>& denied_hosts() const { return denied_; }

  /// Number of statements in the compiled program.
  std::size_t statement_count() const { return program_.statements.size(); }

  const std::string& source() const { return source_; }

 private:
  Requirement() = default;

  std::string source_;
  Program program_;
  std::vector<std::string> preferred_;
  std::vector<std::string> denied_;
};

}  // namespace smartsock::lang
