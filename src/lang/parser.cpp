#include "lang/parser.h"

#include "lang/lexer.h"

namespace smartsock::lang {

const Token& Parser::peek(std::size_t ahead) const {
  std::size_t i = pos_ + ahead;
  if (i >= tokens_.size()) i = tokens_.size() - 1;  // kEnd sentinel
  return tokens_[i];
}

const Token& Parser::advance() {
  const Token& token = peek();
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return token;
}

bool Parser::match(TokenType type) {
  if (!check(type)) return false;
  advance();
  return true;
}

void Parser::fail(const std::string& message) {
  if (failed_) return;
  failed_ = true;
  error_ = {message, peek().line, peek().column};
}

bool Parser::parse(Program& out, ParseError& error) {
  out.statements.clear();
  while (!check(TokenType::kEnd) && !failed_) {
    if (match(TokenType::kNewline)) continue;  // empty line
    int line = peek().line;
    auto expr = parse_expr();
    if (failed_) break;
    if (!match(TokenType::kNewline) && !check(TokenType::kEnd)) {
      fail("expected end of statement, got " + peek().describe());
      break;
    }
    out.statements.push_back(Statement{std::move(expr), line});
  }
  if (failed_) {
    error = error_;
    return false;
  }
  return true;
}

bool Parser::parse_source(std::string_view source, Program& out, ParseError& error) {
  Lexer lexer(source);
  std::vector<Token> tokens;
  LexError lex_error;
  if (!lexer.tokenize(tokens, lex_error)) {
    error = {lex_error.message, lex_error.line, lex_error.column};
    return false;
  }
  Parser parser(std::move(tokens));
  return parser.parse(out, error);
}

std::unique_ptr<Expr> Parser::parse_expr() {
  // assignment: IDENT '=' expr (the lexer distinguishes '=' from '==')
  if (check(TokenType::kIdentifier) && peek(1).type == TokenType::kAssign) {
    Token target = advance();
    advance();  // '='
    auto value = parse_expr();
    if (failed_) return nullptr;
    return Expr::make_assign(std::move(target.text), std::move(value), target.line);
  }
  return parse_or();
}

std::unique_ptr<Expr> Parser::parse_or() {
  auto lhs = parse_and();
  while (!failed_ && check(TokenType::kOr)) {
    int line = advance().line;
    auto rhs = parse_and();
    if (failed_) return nullptr;
    lhs = Expr::make_binary(BinaryOp::kOr, std::move(lhs), std::move(rhs), line);
  }
  return lhs;
}

std::unique_ptr<Expr> Parser::parse_and() {
  auto lhs = parse_relational();
  while (!failed_ && check(TokenType::kAnd)) {
    int line = advance().line;
    auto rhs = parse_relational();
    if (failed_) return nullptr;
    lhs = Expr::make_binary(BinaryOp::kAnd, std::move(lhs), std::move(rhs), line);
  }
  return lhs;
}

std::unique_ptr<Expr> Parser::parse_relational() {
  auto lhs = parse_additive();
  while (!failed_) {
    BinaryOp op;
    if (check(TokenType::kEq)) op = BinaryOp::kEq;
    else if (check(TokenType::kNe)) op = BinaryOp::kNe;
    else if (check(TokenType::kLt)) op = BinaryOp::kLt;
    else if (check(TokenType::kLe)) op = BinaryOp::kLe;
    else if (check(TokenType::kGt)) op = BinaryOp::kGt;
    else if (check(TokenType::kGe)) op = BinaryOp::kGe;
    else break;
    int line = advance().line;
    auto rhs = parse_additive();
    if (failed_) return nullptr;
    lhs = Expr::make_binary(op, std::move(lhs), std::move(rhs), line);
  }
  return lhs;
}

std::unique_ptr<Expr> Parser::parse_additive() {
  auto lhs = parse_multiplicative();
  while (!failed_) {
    BinaryOp op;
    if (check(TokenType::kPlus)) op = BinaryOp::kAdd;
    else if (check(TokenType::kMinus)) op = BinaryOp::kSub;
    else break;
    int line = advance().line;
    auto rhs = parse_multiplicative();
    if (failed_) return nullptr;
    lhs = Expr::make_binary(op, std::move(lhs), std::move(rhs), line);
  }
  return lhs;
}

std::unique_ptr<Expr> Parser::parse_multiplicative() {
  auto lhs = parse_power();
  while (!failed_) {
    BinaryOp op;
    if (check(TokenType::kStar)) op = BinaryOp::kMul;
    else if (check(TokenType::kSlash)) op = BinaryOp::kDiv;
    else break;
    int line = advance().line;
    auto rhs = parse_power();
    if (failed_) return nullptr;
    lhs = Expr::make_binary(op, std::move(lhs), std::move(rhs), line);
  }
  return lhs;
}

std::unique_ptr<Expr> Parser::parse_power() {
  auto base = parse_unary();
  if (!failed_ && check(TokenType::kCaret)) {
    int line = advance().line;
    auto exponent = parse_power();  // right associative, as in hoc
    if (failed_) return nullptr;
    return Expr::make_binary(BinaryOp::kPow, std::move(base), std::move(exponent), line);
  }
  return base;
}

std::unique_ptr<Expr> Parser::parse_unary() {
  if (check(TokenType::kMinus)) {
    int line = advance().line;
    auto operand = parse_unary();
    if (failed_) return nullptr;
    return Expr::make_unary_minus(std::move(operand), line);
  }
  return parse_primary();
}

std::unique_ptr<Expr> Parser::parse_primary() {
  if (check(TokenType::kNumber)) {
    Token token = advance();
    return Expr::make_number(token.number, token.line);
  }
  if (check(TokenType::kNetAddr)) {
    Token token = advance();
    return Expr::make_netaddr(std::move(token.text), token.line);
  }
  if (check(TokenType::kIdentifier)) {
    Token token = advance();
    if (match(TokenType::kLParen)) {  // builtin call
      auto argument = parse_expr();
      if (failed_) return nullptr;
      if (!match(TokenType::kRParen)) {
        fail("expected ')' after function argument");
        return nullptr;
      }
      return Expr::make_call(std::move(token.text), std::move(argument), token.line);
    }
    return Expr::make_var(std::move(token.text), token.line);
  }
  if (match(TokenType::kLParen)) {
    auto inner = parse_expr();
    if (failed_) return nullptr;
    if (!match(TokenType::kRParen)) {
      fail("expected ')'");
      return nullptr;
    }
    return inner;
  }
  fail("expected expression, got " + peek().describe());
  return nullptr;
}

}  // namespace smartsock::lang
