// Evaluator for requirement programs (thesis Fig 4.2 semantics).
//
// Semantics reproduced from the thesis's yacc actions:
//  * Every line is a statement; a statement is *logical* iff the operator at
//    the root of its tree is logical (&&, ||, ==, !=, <, <=, >, >=);
//    parentheses are transparent.
//  * A server qualifies only if every logical statement evaluates non-zero
//    ("server_ok *= $2").
//  * '&&' / '||' evaluate both operands (yacc has no short-circuit).
//  * Use of an undefined variable makes the containing statement an error;
//    an errored statement disqualifies the server (conservative reading of
//    "the whole statement will be considered as a false statement").
//  * Assignments to the user-side host slots (user_preferred_hostN /
//    user_denied_hostN) capture the *name* of the right-hand side when it is
//    a bare host name or NETADDR — "user_denied_host1 = telesto" stores
//    "telesto" (store_uparams in the thesis). The assignment's value is 1 so
//    it can appear inside '&&' chains (Tables 5.5/5.6 do exactly this).
//  * Division by zero and math domain errors are statement errors.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "lang/ast.h"
#include "lang/symtab.h"

namespace smartsock::lang {

/// Host slots captured from user-side assignments during one evaluation.
class UserParams {
 public:
  void set_slot(const std::string& slot, const std::string& host);

  /// Hosts from user_preferred_host1..5, in slot order, empty slots skipped.
  std::vector<std::string> preferred() const;
  /// Hosts from user_denied_host1..5.
  std::vector<std::string> denied() const;

  bool empty() const { return slots_.empty(); }

 private:
  std::map<std::string, std::string> slots_;
};

struct StatementResult {
  int line = 0;
  double value = 0.0;
  bool logical = false;
  bool errored = false;
  std::string error;
};

struct EvalOutcome {
  bool qualified = true;
  std::vector<StatementResult> statements;
  UserParams params;

  /// Set when the requirement assigns the reserved temp variable `rank_by`:
  /// its per-server value lets the wizard order candidates ("3 servers with
  /// largest memory" — the thesis's Ch. 6 future-work item). Higher ranks
  /// first.
  std::optional<double> rank;

  /// Convenience: all error messages with line numbers.
  std::vector<std::string> errors() const;
};

class Evaluator {
 public:
  /// Evaluates `program` against one server's attributes. Temp variables are
  /// fresh per call; user params are harvested into the outcome.
  EvalOutcome evaluate(const Program& program, const AttributeSet& attrs);

 private:
  struct Value {
    double number = 0.0;
    std::string host;  // non-empty when the value is a host/net address
    bool is_host = false;
    bool logical = false;  // the thesis's `logic` flag for this subtree

    static Value numeric(double v, bool logic = false) { return {v, {}, false, logic}; }
    static Value address(std::string h) { return {1.0, std::move(h), true, false}; }
  };

  Value eval_expr(const Expr& expr);
  Value eval_binary(const Expr& expr);
  Value eval_assign(const Expr& expr);
  Value eval_var(const Expr& expr);

  void raise(const Expr& at, const std::string& message);

  const AttributeSet* attrs_ = nullptr;
  TempScope temps_;
  UserParams params_;
  bool errored_ = false;
  std::string error_;
};

}  // namespace smartsock::lang
