#include "lang/requirement_cache.h"

namespace smartsock::lang {

RequirementCache::Result RequirementCache::get_or_compile(std::string_view source) {
  std::string key(source);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (Entry* entry = entries_.get(key)) {
      ++hits_;
      return Result{entry->requirement, entry->error, true};
    }
    ++misses_;
  }

  // Compile outside the lock: a cold expression must not stall concurrent
  // handler threads that are hitting. Two threads racing on the same cold
  // key both compile; the second put is a harmless overwrite.
  Result result;
  std::string error;
  if (auto compiled = Requirement::compile(source, &error)) {
    result.requirement = std::make_shared<const Requirement>(std::move(*compiled));
  } else {
    result.error = std::move(error);
  }

  std::lock_guard<std::mutex> lock(mu_);
  entries_.put(key, Entry{result.requirement, result.error});
  return result;
}

RequirementCache::Stats RequirementCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return Stats{hits_, misses_, entries_.evictions(), entries_.size()};
}

void RequirementCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  hits_ = 0;
  misses_ = 0;
}

}  // namespace smartsock::lang
