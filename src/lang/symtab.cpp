#include "lang/symtab.h"

#include <algorithm>
#include <cmath>

#include "lang/builtins.h"

namespace smartsock::lang {

const std::vector<std::string>& server_variable_names() {
  static const std::vector<std::string> names = {
      // /proc/loadavg
      "host_system_load1", "host_system_load5", "host_system_load15",
      // /proc/stat cpu line (rates in [0,1]) + hardware speed
      "host_cpu_user", "host_cpu_nice", "host_cpu_system", "host_cpu_idle",
      "host_cpu_free", "host_cpu_bogomips",
      // /proc/meminfo, in MB
      "host_memory_total", "host_memory_used", "host_memory_free",
      // /proc/stat disk_io
      "host_disk_allreq", "host_disk_rreq", "host_disk_rblocks",
      "host_disk_wreq", "host_disk_wblocks",
      // /proc/net/dev, bytes/packets per second
      "host_network_rbytesps", "host_network_rpacketsps",
      "host_network_tbytesps", "host_network_tpacketsps",
      // security monitor clearance level
      "host_security_level",
  };
  return names;
}

const std::vector<std::string>& monitor_variable_names() {
  static const std::vector<std::string> names = {
      "monitor_network_bw",     // available bandwidth to the server's group, Mbps
      "monitor_network_delay",  // network delay to the server's group, ms
  };
  return names;
}

const std::vector<std::string>& user_variable_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (int i = 1; i <= 5; ++i) out.push_back("user_preferred_host" + std::to_string(i));
    for (int i = 1; i <= 5; ++i) out.push_back("user_denied_host" + std::to_string(i));
    return out;
  }();
  return names;
}

namespace {
bool contains(const std::vector<std::string>& names, std::string_view name) {
  return std::find(names.begin(), names.end(), name) != names.end();
}
}  // namespace

bool is_server_variable(std::string_view name) {
  return contains(server_variable_names(), name);
}

bool is_monitor_variable(std::string_view name) {
  return contains(monitor_variable_names(), name);
}

bool is_user_variable(std::string_view name) { return contains(user_variable_names(), name); }

bool is_preferred_slot(std::string_view name) {
  return name.rfind("user_preferred_host", 0) == 0;
}

std::optional<double> constant_value(std::string_view name) {
  // The constants hoc predefines (Kernighan & Pike), which the thesis's
  // parser inherits.
  if (name == "PI") return 3.14159265358979323846;
  if (name == "E") return 2.71828182845904523536;
  if (name == "GAMMA") return 0.57721566490153286060;  // Euler-Mascheroni
  if (name == "DEG") return 57.29577951308232087680;   // degrees per radian
  if (name == "PHI") return 1.61803398874989484820;    // golden ratio
  return std::nullopt;
}

SymbolClass classify_symbol(std::string_view name, const AttributeSet& attrs,
                            const TempScope& temps) {
  if (is_user_variable(name)) return SymbolClass::kUserParam;
  if (is_server_variable(name) || is_monitor_variable(name)) return SymbolClass::kServerVar;
  if (constant_value(name)) return SymbolClass::kConstant;
  if (is_builtin(name)) return SymbolClass::kBuiltin;
  if (temps.lookup(std::string(name))) return SymbolClass::kTemp;
  // A name present in the attribute set but not predefined still resolves —
  // the thesis calls adding new parameters "a standard procedure" (Ch. 7).
  if (attrs.count(std::string(name))) return SymbolClass::kServerVar;
  return SymbolClass::kUndefined;
}

}  // namespace smartsock::lang
