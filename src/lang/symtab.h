// Symbol classification for the requirement language.
//
// The thesis distinguishes (§3.6.1) three variable classes plus builtins:
//  * server-side variables — 22 predefined names whose values come from the
//    monitors' status reports (Appendix B.1 plus the monitor_* network
//    metrics used in §5.3.2),
//  * user-side variables  — 10 predefined names (preferred/denied host
//    slots, Appendix B.2) whose values the user assigns,
//  * temp variables       — anything else the user assigns inside the
//    requirement text,
// and the hoc-style constants/built-in math functions of Appendix B.3/B.4.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace smartsock::lang {

enum class SymbolClass : std::uint8_t {
  kServerVar,   // bound from status reports per candidate server
  kUserParam,   // preferred/denied host slots
  kConstant,    // PI, E, ...
  kBuiltin,     // math function
  kTemp,        // user-defined in the requirement text
  kUndefined,   // never assigned, not predefined
};

/// Attribute values for one candidate server, keyed by server-side variable
/// name. Built by the wizard from sysdb/netdb/secdb records.
using AttributeSet = std::map<std::string, double>;

/// The canonical 22 server-side variable names (Appendix B.1).
const std::vector<std::string>& server_variable_names();

/// The network-monitor variables (per server *group*, §3.3.3 / §5.3.2).
const std::vector<std::string>& monitor_variable_names();

/// The 10 user-side variable names (Appendix B.2):
/// user_preferred_host1..5, user_denied_host1..5.
const std::vector<std::string>& user_variable_names();

bool is_server_variable(std::string_view name);
bool is_monitor_variable(std::string_view name);
bool is_user_variable(std::string_view name);

/// True for user_preferred_hostN slots, false for user_denied_hostN.
bool is_preferred_slot(std::string_view name);

/// hoc-style constants (Appendix B.3): PI, E, GAMMA, DEG, PHI.
std::optional<double> constant_value(std::string_view name);

/// Per-evaluation mutable scope: temp variables created by assignments.
class TempScope {
 public:
  void assign(const std::string& name, double value) { values_[name] = value; }
  std::optional<double> lookup(const std::string& name) const {
    auto it = values_.find(name);
    if (it == values_.end()) return std::nullopt;
    return it->second;
  }
  void clear() { values_.clear(); }
  std::size_t size() const { return values_.size(); }

 private:
  std::map<std::string, double> values_;
};

/// Classifies a name given the current evaluation state.
SymbolClass classify_symbol(std::string_view name, const AttributeSet& attrs,
                            const TempScope& temps);

}  // namespace smartsock::lang
