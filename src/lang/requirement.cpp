#include "lang/requirement.h"

#include <fstream>
#include <sstream>

namespace smartsock::lang {

std::optional<Requirement> Requirement::compile(std::string_view source, std::string* error) {
  Requirement requirement;
  requirement.source_ = std::string(source);

  ParseError parse_error;
  if (!Parser::parse_source(source, requirement.program_, parse_error)) {
    if (error) *error = parse_error.to_string();
    return std::nullopt;
  }

  // Harvest user-side host slots with an attribute-free pre-pass. Statements
  // that touch server variables error out here; that is fine — only the
  // captured params are kept.
  Evaluator evaluator;
  EvalOutcome outcome = evaluator.evaluate(requirement.program_, AttributeSet{});
  requirement.preferred_ = outcome.params.preferred();
  requirement.denied_ = outcome.params.denied();
  return requirement;
}

std::optional<Requirement> Requirement::load_file(const std::string& path, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error) *error = "cannot open requirement file: " + path;
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return compile(buffer.str(), error);
}

EvalOutcome Requirement::evaluate(const AttributeSet& attrs) const {
  Evaluator evaluator;
  return evaluator.evaluate(program_, attrs);
}

}  // namespace smartsock::lang
