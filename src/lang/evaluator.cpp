#include "lang/evaluator.h"

#include <cmath>

#include "lang/builtins.h"

namespace smartsock::lang {

void UserParams::set_slot(const std::string& slot, const std::string& host) {
  slots_[slot] = host;
}

namespace {
std::vector<std::string> collect_slots(const std::map<std::string, std::string>& slots,
                                       const char* prefix) {
  std::vector<std::string> out;
  for (int i = 1; i <= 5; ++i) {
    auto it = slots.find(prefix + std::to_string(i));
    if (it != slots.end() && !it->second.empty()) out.push_back(it->second);
  }
  return out;
}
}  // namespace

std::vector<std::string> UserParams::preferred() const {
  return collect_slots(slots_, "user_preferred_host");
}

std::vector<std::string> UserParams::denied() const {
  return collect_slots(slots_, "user_denied_host");
}

std::vector<std::string> EvalOutcome::errors() const {
  std::vector<std::string> out;
  for (const StatementResult& s : statements) {
    if (s.errored) out.push_back("line " + std::to_string(s.line) + ": " + s.error);
  }
  return out;
}

EvalOutcome Evaluator::evaluate(const Program& program, const AttributeSet& attrs) {
  attrs_ = &attrs;
  temps_.clear();
  params_ = UserParams();

  EvalOutcome outcome;
  for (const Statement& statement : program.statements) {
    errored_ = false;
    error_.clear();

    Value value = eval_expr(*statement.expr);

    StatementResult result;
    result.line = statement.line;
    result.value = value.number;
    result.logical = value.logical;
    result.errored = errored_;
    result.error = error_;
    outcome.statements.push_back(result);

    if (errored_) {
      // Conservative: a statement the wizard cannot evaluate must not let a
      // server through.
      outcome.qualified = false;
    } else if (value.logical && value.number == 0.0) {
      outcome.qualified = false;  // server_ok *= $2
    }
  }
  outcome.params = params_;
  outcome.rank = temps_.lookup("rank_by");
  return outcome;
}

void Evaluator::raise(const Expr& at, const std::string& message) {
  if (errored_) return;  // keep the first error
  errored_ = true;
  error_ = message + " in '" + at.to_string() + "'";
}

Evaluator::Value Evaluator::eval_expr(const Expr& expr) {
  // No early-exit on error: the yacc grammar evaluates both operands of
  // every operator, so side effects (user-side host assignments) must run
  // even when a sibling subtree already failed. raise() keeps the first
  // error; an errored statement disqualifies the server regardless of the
  // values computed after the error.
  switch (expr.kind) {
    case ExprKind::kNumber:
      return Value::numeric(expr.number);
    case ExprKind::kNetAddr:
      return Value::address(expr.name);
    case ExprKind::kVar:
      return eval_var(expr);
    case ExprKind::kAssign:
      return eval_assign(expr);
    case ExprKind::kBinary:
      return eval_binary(expr);
    case ExprKind::kUnaryMinus: {
      Value operand = eval_expr(*expr.children[0]);
      return Value::numeric(-operand.number);
    }
    case ExprKind::kCall: {
      Value argument = eval_expr(*expr.children[0]);
      if (errored_) return Value::numeric(0.0);
      BuiltinResult result = call_builtin(expr.name, argument.number);
      if (!result.ok) {
        raise(expr, result.error);
        return Value::numeric(0.0);
      }
      return Value::numeric(result.value);
    }
  }
  raise(expr, "internal: unknown expression kind");
  return Value::numeric(0.0);
}

Evaluator::Value Evaluator::eval_var(const Expr& expr) {
  const std::string& name = expr.name;
  switch (classify_symbol(name, *attrs_, temps_)) {
    case SymbolClass::kServerVar: {
      auto it = attrs_->find(name);
      if (it == attrs_->end()) {
        raise(expr, "server variable '" + name + "' has no value in this report");
        return Value::numeric(0.0);
      }
      return Value::numeric(it->second);
    }
    case SymbolClass::kUserParam:
      // Reading back a host slot yields truthy 1 if it was set this
      // evaluation, mirroring hoc's UPARAM -> u.val access.
      return Value::numeric(1.0);
    case SymbolClass::kConstant:
      return Value::numeric(*constant_value(name));
    case SymbolClass::kTemp:
      return Value::numeric(*temps_.lookup(name));
    case SymbolClass::kBuiltin:
      raise(expr, "'" + name + "' is a function; call it with parentheses");
      return Value::numeric(0.0);
    case SymbolClass::kUndefined:
      raise(expr, "undefined variable '" + name + "'");
      return Value::numeric(0.0);
  }
  raise(expr, "internal: unknown symbol class");
  return Value::numeric(0.0);
}

Evaluator::Value Evaluator::eval_assign(const Expr& expr) {
  const std::string& target = expr.name;
  const Expr& rhs = *expr.children[0];

  if (is_user_variable(target)) {
    // Host slots capture names syntactically: a bare identifier or NETADDR on
    // the right-hand side is the host, not a value to evaluate.
    std::string host;
    if (rhs.kind == ExprKind::kNetAddr || rhs.kind == ExprKind::kVar) {
      host = rhs.name;
    } else {
      Value value = eval_expr(rhs);
      if (errored_) return Value::numeric(0.0);
      host = value.is_host ? value.host : std::string();
      if (host.empty()) {
        raise(expr, "'" + target + "' must be assigned a host name or address");
        return Value::numeric(0.0);
      }
    }
    params_.set_slot(target, host);
    return Value::numeric(1.0);  // truthy so it composes with '&&'
  }

  if (is_server_variable(target) || is_monitor_variable(target)) {
    raise(expr, "cannot assign to server-side variable '" + target + "'");
    return Value::numeric(0.0);
  }
  if (constant_value(target)) {
    raise(expr, "cannot assign to constant '" + target + "'");
    return Value::numeric(0.0);
  }
  if (is_builtin(target)) {
    raise(expr, "cannot assign to built-in function '" + target + "'");
    return Value::numeric(0.0);
  }

  Value value = eval_expr(rhs);
  if (errored_) return Value::numeric(0.0);
  if (value.is_host) {
    raise(expr, "cannot store a host address in temp variable '" + target + "'");
    return Value::numeric(0.0);
  }
  temps_.assign(target, value.number);
  // Assignment propagates the value but clears the logic flag (yacc: asgn
  // sets logic = 0).
  return Value::numeric(value.number);
}

Evaluator::Value Evaluator::eval_binary(const Expr& expr) {
  Value lhs = eval_expr(*expr.children[0]);
  Value rhs = eval_expr(*expr.children[1]);
  if (errored_) return Value::numeric(0.0);

  // Host addresses compare as strings under == and !=; under any other
  // operator they coerce to their numeric value (1).
  if ((expr.op == BinaryOp::kEq || expr.op == BinaryOp::kNe) && lhs.is_host && rhs.is_host) {
    bool equal = lhs.host == rhs.host;
    bool result = expr.op == BinaryOp::kEq ? equal : !equal;
    return Value::numeric(result ? 1.0 : 0.0, /*logic=*/true);
  }

  double a = lhs.number;
  double b = rhs.number;
  switch (expr.op) {
    case BinaryOp::kAdd:
      return Value::numeric(a + b);
    case BinaryOp::kSub:
      return Value::numeric(a - b);
    case BinaryOp::kMul:
      return Value::numeric(a * b);
    case BinaryOp::kDiv:
      if (b == 0.0) {
        raise(expr, "division by 0");
        return Value::numeric(0.0);
      }
      return Value::numeric(a / b);
    case BinaryOp::kPow: {
      BuiltinResult result = checked_pow(a, b);
      if (!result.ok) {
        raise(expr, result.error);
        return Value::numeric(0.0);
      }
      return Value::numeric(result.value);
    }
    case BinaryOp::kAnd:
      return Value::numeric((a != 0.0 && b != 0.0) ? 1.0 : 0.0, true);
    case BinaryOp::kOr:
      return Value::numeric((a != 0.0 || b != 0.0) ? 1.0 : 0.0, true);
    case BinaryOp::kEq:
      return Value::numeric(a == b ? 1.0 : 0.0, true);
    case BinaryOp::kNe:
      return Value::numeric(a != b ? 1.0 : 0.0, true);
    case BinaryOp::kLt:
      return Value::numeric(a < b ? 1.0 : 0.0, true);
    case BinaryOp::kLe:
      return Value::numeric(a <= b ? 1.0 : 0.0, true);
    case BinaryOp::kGt:
      return Value::numeric(a > b ? 1.0 : 0.0, true);
    case BinaryOp::kGe:
      return Value::numeric(a >= b ? 1.0 : 0.0, true);
  }
  raise(expr, "internal: unknown operator");
  return Value::numeric(0.0);
}

}  // namespace smartsock::lang
