// Thread-safe LRU cache of compiled requirements — stage 1 of the wizard's
// query fast path.
//
// The wizard historically re-lexed and re-parsed the requirement text on
// every UDP request (§3.6.1 step 3). Users overwhelmingly resend the same
// requirement file, so the cache keys compiled programs by the exact
// expression text and returns a shared handle on hit. Compile *failures*
// are cached too (negative caching): a client retrying a malformed
// expression in a tight loop costs one map lookup, not a parse.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "lang/requirement.h"
#include "util/lru.h"

namespace smartsock::lang {

class RequirementCache {
 public:
  /// Snapshot of the hit/miss accounting, readable while queries run.
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t size = 0;
  };

  /// One lookup's outcome: on success `requirement` is set; on compile
  /// failure it is null and `error` carries the diagnostic. `hit` tells
  /// whether the compiler ran (false) or the cache answered (true).
  struct Result {
    std::shared_ptr<const Requirement> requirement;
    std::string error;
    bool hit = false;

    explicit operator bool() const { return requirement != nullptr; }
  };

  /// `capacity` counts cached expressions (positive and negative entries
  /// alike); 0 disables caching and every call compiles.
  explicit RequirementCache(std::size_t capacity) : entries_(capacity) {}

  /// Returns the cached compile result for `source`, compiling on miss.
  Result get_or_compile(std::string_view source);

  Stats stats() const;
  std::size_t capacity() const { return entries_.capacity(); }
  void clear();

 private:
  struct Entry {
    std::shared_ptr<const Requirement> requirement;  // null => negative entry
    std::string error;
  };

  mutable std::mutex mu_;
  util::LruMap<std::string, Entry> entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace smartsock::lang
