// Lexer for the requirement meta language (thesis Fig 4.1).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "lang/token.h"

namespace smartsock::lang {

struct LexError {
  std::string message;
  int line = 0;
  int column = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view source) : source_(source) {}

  /// Tokenizes the whole input. On failure returns false and fills `error`.
  /// On success the token stream always ends with kEnd, and every statement
  /// is terminated by kNewline (one is synthesized for a missing trailing
  /// newline, matching the thesis's line-per-statement rule).
  bool tokenize(std::vector<Token>& out, LexError& error);

 private:
  bool at_end() const { return pos_ >= source_.size(); }
  char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < source_.size() ? source_[pos_ + ahead] : '\0';
  }
  char advance();
  void push(std::vector<Token>& out, TokenType type, std::string text = {});

  std::string_view source_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
  int token_line_ = 1;
  int token_column_ = 1;
};

}  // namespace smartsock::lang
