#include "lang/builtins.h"

#include <cmath>
#include <map>

namespace smartsock::lang {

namespace {

using UnaryFn = double (*)(double);

struct BuiltinSpec {
  UnaryFn fn;
  // Domain guard; returns an error message or empty string when fine.
  const char* (*guard)(double);
};

const char* no_guard(double) { return ""; }
const char* log_guard(double x) { return x <= 0.0 ? "argument must be positive" : ""; }
const char* sqrt_guard(double x) { return x < 0.0 ? "argument must be non-negative" : ""; }
const char* asin_guard(double x) {
  return (x < -1.0 || x > 1.0) ? "argument must be in [-1, 1]" : "";
}

double integer_part(double x) { return std::trunc(x); }

const std::map<std::string, BuiltinSpec, std::less<>>& table() {
  static const std::map<std::string, BuiltinSpec, std::less<>> builtins = {
      {"sin", {std::sin, no_guard}},
      {"cos", {std::cos, no_guard}},
      {"tan", {std::tan, no_guard}},
      {"atan", {std::atan, no_guard}},
      {"asin", {std::asin, asin_guard}},
      {"acos", {std::acos, asin_guard}},
      {"exp", {std::exp, no_guard}},
      {"log", {std::log, log_guard}},
      {"log10", {std::log10, log_guard}},
      {"sqrt", {std::sqrt, sqrt_guard}},
      {"abs", {std::fabs, no_guard}},
      {"int", {integer_part, no_guard}},
      {"floor", {std::floor, no_guard}},
      {"ceil", {std::ceil, no_guard}},
  };
  return builtins;
}

}  // namespace

bool is_builtin(std::string_view name) { return table().count(name) > 0; }

const std::vector<std::string>& builtin_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const auto& [name, spec] : table()) out.push_back(name);
    return out;
  }();
  return names;
}

BuiltinResult call_builtin(std::string_view name, double argument) {
  auto it = table().find(name);
  if (it == table().end()) {
    return BuiltinResult::failure("unknown function '" + std::string(name) + "'");
  }
  const char* domain_error = it->second.guard(argument);
  if (domain_error[0] != '\0') {
    return BuiltinResult::failure(std::string(name) + ": " + domain_error);
  }
  double value = it->second.fn(argument);
  if (!std::isfinite(value)) {
    return BuiltinResult::failure(std::string(name) + ": result overflow");
  }
  return BuiltinResult::success(value);
}

BuiltinResult checked_pow(double base, double exponent) {
  double value = std::pow(base, exponent);
  if (!std::isfinite(value)) {
    return BuiltinResult::failure("'^': result not finite");
  }
  return BuiltinResult::success(value);
}

}  // namespace smartsock::lang
