#include "lang/token.h"

namespace smartsock::lang {

std::string_view token_type_name(TokenType type) {
  switch (type) {
    case TokenType::kNumber: return "NUMBER";
    case TokenType::kNetAddr: return "NETADDR";
    case TokenType::kIdentifier: return "IDENTIFIER";
    case TokenType::kAnd: return "&&";
    case TokenType::kOr: return "||";
    case TokenType::kGt: return ">";
    case TokenType::kGe: return ">=";
    case TokenType::kLt: return "<";
    case TokenType::kLe: return "<=";
    case TokenType::kEq: return "==";
    case TokenType::kNe: return "!=";
    case TokenType::kAssign: return "=";
    case TokenType::kPlus: return "+";
    case TokenType::kMinus: return "-";
    case TokenType::kStar: return "*";
    case TokenType::kSlash: return "/";
    case TokenType::kCaret: return "^";
    case TokenType::kLParen: return "(";
    case TokenType::kRParen: return ")";
    case TokenType::kNewline: return "NEWLINE";
    case TokenType::kEnd: return "END";
  }
  return "UNKNOWN";
}

std::string Token::describe() const {
  std::string out(token_type_name(type));
  if (type == TokenType::kNumber) {
    out += "(" + std::to_string(number) + ")";
  } else if (type == TokenType::kIdentifier || type == TokenType::kNetAddr) {
    out += "(" + text + ")";
  }
  return out;
}

}  // namespace smartsock::lang
