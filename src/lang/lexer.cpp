#include "lang/lexer.h"

#include <cctype>

#include "util/strings.h"

namespace smartsock::lang {

namespace {

bool is_ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)); }
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
bool is_netaddr_tail_char(char c) {
  // After "name." the thesis rule admits [\.a-zA-Z_0-9]* — letters, digits,
  // underscores, dots and (for host names like titan-x) hyphens.
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.' || c == '-';
}

}  // namespace

char Lexer::advance() {
  char c = source_[pos_++];
  if (c == '\n') {
    ++line_;
    column_ = 1;
  } else {
    ++column_;
  }
  return c;
}

void Lexer::push(std::vector<Token>& out, TokenType type, std::string text) {
  Token token;
  token.type = type;
  token.text = std::move(text);
  token.line = token_line_;
  token.column = token_column_;
  out.push_back(std::move(token));
}

bool Lexer::tokenize(std::vector<Token>& out, LexError& error) {
  out.clear();
  while (!at_end()) {
    token_line_ = line_;
    token_column_ = column_;
    char c = peek();

    if (c == '#') {  // comment to end of line
      while (!at_end() && peek() != '\n') advance();
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r') {
      advance();
      continue;
    }
    if (c == '\n') {
      advance();
      // Collapse consecutive newlines (the grammar allows empty lines).
      if (!out.empty() && out.back().type != TokenType::kNewline) {
        push(out, TokenType::kNewline);
      }
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c))) {
      // NUMBER or dotted-quad NETADDR. Consume the maximal digits-and-dots
      // run, then classify: 4 numeric octets -> NETADDR, "int" or
      // "int.frac" -> NUMBER, anything else is an error.
      std::size_t start = pos_;
      while (!at_end() && (std::isdigit(static_cast<unsigned char>(peek())) || peek() == '.')) {
        advance();
      }
      std::string lexeme(source_.substr(start, pos_ - start));
      if (util::looks_like_ipv4(lexeme)) {
        push(out, TokenType::kNetAddr, lexeme);
        continue;
      }
      auto fields = util::split(lexeme, '.', /*keep_empty=*/true);
      bool valid_number =
          (fields.size() == 1 || fields.size() == 2) && !fields[0].empty() &&
          (fields.size() == 1 || !fields[1].empty());
      if (!valid_number) {
        error = {"malformed number or address '" + lexeme + "'", token_line_, token_column_};
        return false;
      }
      Token token;
      token.type = TokenType::kNumber;
      token.number = *util::parse_double(lexeme);
      token.line = token_line_;
      token.column = token_column_;
      out.push_back(std::move(token));
      continue;
    }

    if (is_ident_start(c)) {
      std::size_t start = pos_;
      while (!at_end() && is_ident_char(peek())) advance();
      // "name.rest" forms a NETADDR per Fig 4.1's second rule. Host names in
      // the testbed also use hyphens (titan-x, pandora-x); a '-' directly
      // followed by a letter joins the name. Subtraction between bare
      // identifiers therefore needs spaces ("a - b"); "a-2" stays arithmetic.
      while (!at_end() && peek() == '-' && is_ident_start(peek(1))) {
        advance();  // consume '-'
        while (!at_end() && is_ident_char(peek())) advance();
      }
      if (!at_end() && peek() == '.') {
        advance();
        while (!at_end() && is_netaddr_tail_char(peek())) advance();
        push(out, TokenType::kNetAddr, std::string(source_.substr(start, pos_ - start)));
      } else {
        std::string lexeme(source_.substr(start, pos_ - start));
        if (lexeme.find('-') != std::string::npos) {
          push(out, TokenType::kNetAddr, lexeme);  // hyphenated bare host name
        } else {
          push(out, TokenType::kIdentifier, lexeme);
        }
      }
      continue;
    }

    advance();
    switch (c) {
      case '&':
        if (peek() == '&') {
          advance();
          push(out, TokenType::kAnd);
        } else {
          error = {"stray '&' (did you mean '&&'?)", token_line_, token_column_};
          return false;
        }
        break;
      case '|':
        if (peek() == '|') {
          advance();
          push(out, TokenType::kOr);
        } else {
          error = {"stray '|' (did you mean '||'?)", token_line_, token_column_};
          return false;
        }
        break;
      case '>':
        if (peek() == '=') {
          advance();
          push(out, TokenType::kGe);
        } else {
          push(out, TokenType::kGt);
        }
        break;
      case '<':
        if (peek() == '=') {
          advance();
          push(out, TokenType::kLe);
        } else {
          push(out, TokenType::kLt);
        }
        break;
      case '=':
        if (peek() == '=') {
          advance();
          push(out, TokenType::kEq);
        } else {
          push(out, TokenType::kAssign);
        }
        break;
      case '!':
        if (peek() == '=') {
          advance();
          push(out, TokenType::kNe);
        } else {
          error = {"stray '!' (did you mean '!='?)", token_line_, token_column_};
          return false;
        }
        break;
      case '+':
        push(out, TokenType::kPlus);
        break;
      case '-':
        push(out, TokenType::kMinus);
        break;
      case '*':
        push(out, TokenType::kStar);
        break;
      case '/':
        push(out, TokenType::kSlash);
        break;
      case '^':
        push(out, TokenType::kCaret);
        break;
      case '(':
        push(out, TokenType::kLParen);
        break;
      case ')':
        push(out, TokenType::kRParen);
        break;
      default:
        error = {std::string("unexpected character '") + c + "'", token_line_, token_column_};
        return false;
    }
  }

  if (!out.empty() && out.back().type != TokenType::kNewline) {
    push(out, TokenType::kNewline);
  }
  push(out, TokenType::kEnd);
  return true;
}

}  // namespace smartsock::lang
