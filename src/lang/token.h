// Token model for the server-requirement meta language (thesis Fig 4.1).
//
// The thesis implements the lexer with GNU flex; we reproduce the exact token
// classes by hand:
//   "#.*"                                      comments (ignored)
//   " \t"                                      whitespace (ignored)
//   [0-9]+(\.[0-9]+)?                          NUMBER
//   [0-9]+\.[0-9]+\.[0-9]+\.[0-9]+             NETADDR (dotted quad)
//   [a-zA-Z]+[a-zA-Z_0-9]*\.[\.a-zA-Z_0-9]*    NETADDR (dotted domain name)
//   [a-zA-Z]+[a-zA-Z_0-9]*                     identifier (VAR/UNDEF/BLTIN
//                                              resolved later by the parser)
//   && || > >= < <= == !=                      logical operators
//   + - * / ^ ( ) = '\n'                       single-char tokens
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace smartsock::lang {

enum class TokenType : std::uint8_t {
  kNumber,
  kNetAddr,
  kIdentifier,
  kAnd,        // &&
  kOr,         // ||
  kGt,         // >
  kGe,         // >=
  kLt,         // <
  kLe,         // <=
  kEq,         // ==
  kNe,         // !=
  kAssign,     // =
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kCaret,      // ^ (power, as in hoc)
  kLParen,
  kRParen,
  kNewline,    // statement terminator
  kEnd,        // end of input
};

/// Human-readable token-type name for diagnostics.
std::string_view token_type_name(TokenType type);

struct Token {
  TokenType type = TokenType::kEnd;
  double number = 0.0;    // valid when type == kNumber
  std::string text;       // lexeme for identifiers / netaddrs
  int line = 0;           // 1-based
  int column = 0;         // 1-based

  std::string describe() const;
};

}  // namespace smartsock::lang
