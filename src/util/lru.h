// Generic LRU map — the building block of the wizard's query fast path.
//
// The MDS2 study (Zhang & Schopf) found result caching to be the dominant
// lever on grid-information-service query throughput; both of our caches
// (compiled requirements, wizard replies) are instances of this container.
// Not thread-safe by itself: callers wrap it with their own lock so one
// mutex covers the lookup *and* the stats they keep next to it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>

namespace smartsock::util {

/// Fixed-capacity map with least-recently-used eviction. Capacity 0 disables
/// storage entirely — every get misses, every put is a no-op — which callers
/// use as the cache's "off" switch.
template <typename Key, typename Value>
class LruMap {
 public:
  explicit LruMap(std::size_t capacity) : capacity_(capacity) {}

  std::size_t size() const { return map_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::uint64_t evictions() const { return evictions_; }

  /// Returns the entry and marks it most-recently-used; nullptr on miss.
  /// The pointer is valid until the next put/erase/clear.
  Value* get(const Key& key) {
    auto it = map_.find(key);
    if (it == map_.end()) return nullptr;
    order_.splice(order_.begin(), order_, it->second.pos);
    return &it->second.value;
  }

  /// Inserts or overwrites; evicts the least-recently-used entry when full.
  void put(const Key& key, Value value) {
    if (capacity_ == 0) return;
    auto it = map_.find(key);
    if (it != map_.end()) {
      it->second.value = std::move(value);
      order_.splice(order_.begin(), order_, it->second.pos);
      return;
    }
    if (map_.size() >= capacity_) {
      map_.erase(order_.back());
      order_.pop_back();
      ++evictions_;
    }
    order_.push_front(key);
    map_.emplace(key, Entry{std::move(value), order_.begin()});
  }

  void erase(const Key& key) {
    auto it = map_.find(key);
    if (it == map_.end()) return;
    order_.erase(it->second.pos);
    map_.erase(it);
  }

  void clear() {
    map_.clear();
    order_.clear();
  }

 private:
  struct Entry {
    Value value;
    typename std::list<Key>::iterator pos;
  };

  std::size_t capacity_;
  std::uint64_t evictions_ = 0;
  std::list<Key> order_;  // front = most recently used
  std::unordered_map<Key, Entry> map_;
};

}  // namespace smartsock::util
