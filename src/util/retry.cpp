#include "util/retry.h"

#include <algorithm>

namespace smartsock::util {

RetryState::RetryState(const RetryPolicy& policy, Rng& rng, Clock& clock)
    : policy_(policy),
      rng_(&rng),
      clock_(&clock),
      start_(clock.now()),
      next_delay_(policy.initial_backoff) {}

bool RetryState::can_retry() const {
  if (attempts_ >= policy_.max_attempts) return false;
  if (policy_.budget > Duration::zero() &&
      clock_->now() - start_ + next_delay_ > policy_.budget) {
    return false;
  }
  return true;
}

bool RetryState::backoff() {
  if (!can_retry()) return false;
  Duration delay = next_delay_;
  if (policy_.jitter > 0.0) {
    double factor = 1.0 + rng_->uniform(-policy_.jitter, policy_.jitter);
    delay = std::chrono::duration_cast<Duration>(delay * std::max(0.0, factor));
  }
  clock_->sleep_for(delay);
  ++attempts_;
  auto widened = std::chrono::duration_cast<Duration>(next_delay_ * policy_.multiplier);
  next_delay_ = std::min(widened, policy_.max_backoff);
  return true;
}

void RetryState::reset() {
  attempts_ = 1;
  next_delay_ = policy_.initial_backoff;
  start_ = clock_->now();
}

CircuitBreaker::CircuitBreaker(CircuitBreakerConfig config, Clock& clock)
    : config_(config), clock_(&clock), cooldown_(config.cooldown) {}

bool CircuitBreaker::allow() {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (clock_->now() - opened_at_ >= cooldown_) {
        state_ = State::kHalfOpen;
        probe_in_flight_ = true;
        return true;
      }
      return false;
    case State::kHalfOpen:
      if (!probe_in_flight_) {
        probe_in_flight_ = true;
        return true;
      }
      return false;
  }
  return true;  // unreachable
}

void CircuitBreaker::record_success() {
  std::lock_guard<std::mutex> lock(mu_);
  state_ = State::kClosed;
  failures_ = 0;
  reopen_count_ = 0;
  probe_in_flight_ = false;
  cooldown_ = config_.cooldown;
}

void CircuitBreaker::trip_locked() {
  state_ = State::kOpen;
  opened_at_ = clock_->now();
  probe_in_flight_ = false;
  ++trips_;
  // Escalate the cooldown for back-to-back open cycles.
  if (reopen_count_ > 0) {
    auto stretched =
        std::chrono::duration_cast<Duration>(cooldown_ * config_.cooldown_multiplier);
    cooldown_ = std::min(stretched, config_.max_cooldown);
  }
  ++reopen_count_;
}

void CircuitBreaker::record_failure() {
  std::lock_guard<std::mutex> lock(mu_);
  ++failures_;
  if (state_ == State::kHalfOpen) {
    trip_locked();  // the probe failed — straight back to open
    return;
  }
  if (state_ == State::kClosed && failures_ >= config_.failures_to_open) {
    trip_locked();
  }
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

std::uint64_t CircuitBreaker::trips() const {
  std::lock_guard<std::mutex> lock(mu_);
  return trips_;
}

int CircuitBreaker::consecutive_failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return failures_;
}

}  // namespace smartsock::util
