// Minimal JSON document parser (ISSUE 9).
//
// The fleet aggregator scrapes other daemons' stats endpoints and has to
// understand the JSON they reply with. The repo writes JSON in half a dozen
// places but until now never read it, so this is the first (and only)
// parser: a small recursive-descent DOM over std::string/vector — no
// streaming, no SAX, no external dependency. Scope is deliberately limited
// to what RFC 8259 documents our own emitters produce: objects keep member
// order (vector of pairs, first match wins on lookup), numbers come back as
// double (snapshot counters fit in the 2^53 exact-integer range), and a
// depth cap keeps adversarial nesting from overflowing the stack.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace smartsock::util {

/// One parsed JSON value. A discriminated union over the seven RFC types
/// (null, true/false folded into kBool).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<JsonValue>;
  /// Members in document order; duplicate keys are retained (find returns
  /// the first).
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  Array array;
  Object object;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  /// First member with this key, or null if absent / not an object.
  const JsonValue* find(std::string_view key) const;

  /// number value of member `key`, or `fallback` when absent or non-numeric.
  double number_or(std::string_view key, double fallback) const;
  /// string value of member `key`, or `fallback` when absent or non-string.
  std::string string_or(std::string_view key, std::string_view fallback) const;
  /// number as uint64 (clamped at 0; fractional part truncated).
  std::uint64_t uint_or(std::string_view key, std::uint64_t fallback) const;
};

/// Parses one complete JSON document. Returns nullopt on any syntax error,
/// trailing garbage after the document, or nesting deeper than 64 levels.
std::optional<JsonValue> json_parse(std::string_view text);

}  // namespace smartsock::util
