// Minimal thread-safe leveled logger.
//
// The paper's daemons (probes, monitors, wizard) log diagnostic events; this
// logger keeps that observable without pulling in an external dependency.
// Levels can be silenced globally, which the test suite uses to keep output
// clean while still exercising the logging paths.
#pragma once

#include <atomic>
#include <cstdio>
#include <functional>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

namespace smartsock::util {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// Returns the fixed 5-char tag used in log lines ("TRACE", "INFO ", ...).
std::string_view log_level_tag(LogLevel level);

/// Parses "trace"/"debug"/"info"/"warn"/"error"/"off" (case-insensitive).
/// Returns kInfo for unknown strings.
LogLevel parse_log_level(std::string_view text);

/// Process-wide logger. Writes to stderr by default; level and sink are
/// adjustable at runtime (tests inject a capturing sink).
class Logger {
 public:
  /// Receives every emitted record. Called under the logger's mutex, so a
  /// sink needs no synchronization of its own but must not log recursively.
  using Sink = std::function<void(LogLevel, std::string_view component,
                                  std::string_view message)>;

  static Logger& instance();

  void set_level(LogLevel level);
  LogLevel level() const;

  /// Re-reads SMARTSOCK_LOG; falls back to `fallback` when unset. The
  /// constructor-time read happens at static init, before a test or an
  /// embedding process could have set the variable — this makes the env
  /// contract re-appliable.
  void reset_from_env(LogLevel fallback = LogLevel::kWarn);

  /// Replaces the output sink. A null sink restores the stderr default.
  void set_sink(Sink sink);

  /// Emits one record: "[<tag>] <component>: <message>\n". Thread-safe.
  void log(LogLevel level, std::string_view component, std::string_view message);

  bool enabled(LogLevel level) const {
    return static_cast<int>(level) >= level_.load(std::memory_order_relaxed);
  }

 private:
  Logger();

  mutable std::mutex mu_;
  std::atomic<int> level_;
  Sink sink_;  // null => stderr
};

/// Stream-style helper: LOG_AS(kInfo, "wizard") << "served " << n;
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  ~LogLine() {
    if (Logger::instance().enabled(level_)) {
      Logger::instance().log(level_, component_, stream_.str());
    }
  }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    if (Logger::instance().enabled(level_)) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};

}  // namespace smartsock::util

#define SMARTSOCK_LOG(level, component) \
  ::smartsock::util::LogLine(::smartsock::util::LogLevel::level, (component))
