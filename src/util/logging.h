// Minimal thread-safe leveled logger.
//
// The paper's daemons (probes, monitors, wizard) log diagnostic events; this
// logger keeps that observable without pulling in an external dependency.
// Levels can be silenced globally, which the test suite uses to keep output
// clean while still exercising the logging paths.
//
// ISSUE 7 adds the LogRing: a fixed-memory ring of the most recent formatted
// lines that the crash blackbox can flush from a signal handler. A ring
// attached to the Logger tees every emitted record (it does not replace the
// sink), costing one memcpy per line and zero allocations after construction.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace smartsock::util {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// Returns the fixed 5-char tag used in log lines ("TRACE", "INFO ", ...).
std::string_view log_level_tag(LogLevel level);

/// Parses "trace"/"debug"/"info"/"warn"/"error"/"off" (case-insensitive).
/// Returns kInfo for unknown strings.
LogLevel parse_log_level(std::string_view text);

/// Bounded ring of the last N formatted log lines, kept in pre-sized slots
/// so the crash blackbox can recover them without allocating. Writers go
/// through the Logger (which serializes them); crash_dump() reads the slots
/// lock-free with a per-slot ticket so a line the crash interrupted mid-write
/// is skipped instead of emitted torn.
class LogRing {
 public:
  static constexpr std::size_t kLineBytes = 240;

  explicit LogRing(std::size_t capacity = 128);

  LogRing(const LogRing&) = delete;
  LogRing& operator=(const LogRing&) = delete;

  /// Formats and stores "[TAG ] component: message" (truncated to
  /// kLineBytes). Thread-safe.
  void append(LogLevel level, std::string_view component, std::string_view message);

  /// The retained lines, oldest first (normal-path reader for tests/stats).
  std::vector<std::string> snapshot() const;

  /// Writes the retained lines to `fd`, oldest first, one per line.
  /// Async-signal-safe; slots a writer holds are skipped.
  void crash_dump(int fd) const;

  std::size_t capacity() const { return capacity_; }
  /// Lines ever appended (including overwritten ones).
  std::uint64_t appended() const { return head_.load(std::memory_order_relaxed); }

 private:
  struct Slot {
    /// 0 = never written; odd = 2*seq+1 while writing; even = 2*seq+2 done.
    std::atomic<std::uint64_t> ticket{0};
    std::uint16_t len = 0;
    char text[kLineBytes];
  };

  std::size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> head_{0};
};

/// Process-wide logger. Writes to stderr by default; level and sink are
/// adjustable at runtime (tests inject a capturing sink).
class Logger {
 public:
  /// Receives every emitted record. Called under the logger's mutex, so a
  /// sink needs no synchronization of its own but must not log recursively.
  using Sink = std::function<void(LogLevel, std::string_view component,
                                  std::string_view message)>;

  static Logger& instance();

  void set_level(LogLevel level);
  LogLevel level() const;

  /// Re-reads SMARTSOCK_LOG; falls back to `fallback` when unset. The
  /// constructor-time read happens at static init, before a test or an
  /// embedding process could have set the variable — this makes the env
  /// contract re-appliable.
  void reset_from_env(LogLevel fallback = LogLevel::kWarn);

  /// Replaces the output sink. A null sink restores the stderr default.
  void set_sink(Sink sink);

  /// Attaches a ring that tees every emitted record (in addition to the
  /// sink/stderr). Null detaches. The ring must outlive the attachment —
  /// the blackbox uses a process-lifetime ring.
  void attach_ring(LogRing* ring);
  LogRing* ring() const { return ring_.load(std::memory_order_acquire); }

  /// Emits one record: "[<tag>] <component>: <message>\n". Thread-safe.
  void log(LogLevel level, std::string_view component, std::string_view message);

  bool enabled(LogLevel level) const {
    return static_cast<int>(level) >= level_.load(std::memory_order_relaxed);
  }

 private:
  Logger();

  mutable std::mutex mu_;
  std::atomic<int> level_;
  Sink sink_;  // null => stderr
  std::atomic<LogRing*> ring_{nullptr};
};

/// Stream-style helper: LOG_AS(kInfo, "wizard") << "served " << n;
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  ~LogLine() {
    if (Logger::instance().enabled(level_)) {
      Logger::instance().log(level_, component_, stream_.str());
    }
  }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    if (Logger::instance().enabled(level_)) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};

}  // namespace smartsock::util

#define SMARTSOCK_LOG(level, component) \
  ::smartsock::util::LogLine(::smartsock::util::LogLevel::level, (component))
