// Async-signal-safe formatting (ISSUE 7, crash blackbox).
//
// The postmortem path runs inside SIGSEGV/SIGABRT handlers where printf,
// iostreams and anything that may allocate are off the table. CrashWriter is
// the lowest common denominator: a small stack buffer flushed with write(2),
// plus hand-rolled integer/double/hex formatting. Every consumer of the
// blackbox (logging ring, span ring, metrics registry) formats its crash
// section through this writer, so no crash-path code touches the heap.
#pragma once

#include <unistd.h>

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace smartsock::util {

/// Buffered fd writer safe to use from a signal handler. Not thread-safe —
/// the crash handler is the only writer by construction.
class CrashWriter {
 public:
  explicit CrashWriter(int fd) : fd_(fd) {}
  ~CrashWriter() { flush(); }

  CrashWriter(const CrashWriter&) = delete;
  CrashWriter& operator=(const CrashWriter&) = delete;

  void flush() {
    std::size_t off = 0;
    while (off < len_) {
      ssize_t n = ::write(fd_, buf_ + off, len_ - off);
      if (n <= 0) break;  // best effort; nothing to do about a failing fd
      off += static_cast<std::size_t>(n);
    }
    len_ = 0;
  }

  void put(char c) {
    if (len_ >= sizeof(buf_)) flush();
    buf_[len_++] = c;
  }

  void str(std::string_view s) {
    for (char c : s) put(c == '\0' ? '?' : c);
  }

  void u64(std::uint64_t v) {
    char digits[24];
    std::size_t n = 0;
    do {
      digits[n++] = static_cast<char>('0' + v % 10);
      v /= 10;
    } while (v != 0);
    while (n > 0) put(digits[--n]);
  }

  void i64(std::int64_t v) {
    if (v < 0) {
      put('-');
      // Negate as unsigned so INT64_MIN does not overflow.
      u64(~static_cast<std::uint64_t>(v) + 1);
    } else {
      u64(static_cast<std::uint64_t>(v));
    }
  }

  /// Fixed-point with 3 fractional digits; enough for metric gauges. NaN and
  /// infinities print as words, magnitudes past 2^63 saturate.
  void dbl(double v) {
    if (v != v) {
      str("nan");
      return;
    }
    if (v < 0) {
      put('-');
      v = -v;
    }
    if (v > 9.2e18) {
      str("inf");
      return;
    }
    auto whole = static_cast<std::uint64_t>(v);
    auto milli = static_cast<std::uint64_t>((v - static_cast<double>(whole)) * 1000.0 + 0.5);
    if (milli >= 1000) {
      whole += 1;
      milli -= 1000;
    }
    u64(whole);
    put('.');
    put(static_cast<char>('0' + milli / 100));
    put(static_cast<char>('0' + milli / 10 % 10));
    put(static_cast<char>('0' + milli % 10));
  }

  void hex(std::uint64_t v) {
    str("0x");
    char digits[16];
    std::size_t n = 0;
    do {
      digits[n++] = "0123456789abcdef"[v & 0xf];
      v >>= 4;
    } while (v != 0);
    while (n > 0) put(digits[--n]);
  }

  void ptr(const void* p) { hex(reinterpret_cast<std::uintptr_t>(p)); }

 private:
  int fd_;
  char buf_[512];
  std::size_t len_ = 0;
};

}  // namespace smartsock::util
