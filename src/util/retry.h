// Retry/backoff policy and circuit breaker — the shared resilience
// primitives (ISSUE 3 tentpole, part 2).
//
// The thesis's recovery story (§1.1) picks alternate *servers*; this file
// hardens the control plane itself. Every fragile hop (client→wizard query,
// transmitter→receiver push, receiver→transmitter pull) retries through the
// same policy: exponential backoff with jitter so a burst of failures does
// not resynchronize into a thundering herd, capped by an attempt count and
// an optional wall-clock budget. Components that talk to one *specific* peer
// repeatedly (the centralized transmitter) additionally run a circuit
// breaker so a long receiver outage costs one probe per cooldown instead of
// a full retry storm per interval — the MDS2 lesson that a monitoring
// service under load must shed work against dead components.
#pragma once

#include <cstdint>
#include <mutex>

#include "util/clock.h"
#include "util/rng.h"

namespace smartsock::util {

/// Tunables for one retry loop. The defaults suit sub-second RPCs over
/// loopback/LAN; wide-area callers should raise initial_backoff.
struct RetryPolicy {
  /// Total tries including the first (1 = no retry).
  int max_attempts = 3;
  Duration initial_backoff = std::chrono::milliseconds(50);
  double multiplier = 2.0;
  Duration max_backoff = std::chrono::seconds(2);
  /// Uniform +-fraction applied to each delay (0.2 = +-20%).
  double jitter = 0.2;
  /// Wall-clock cap across all attempts; zero = attempts-only.
  Duration budget{0};
};

/// Per-call state for one retry loop over a RetryPolicy. Not thread-safe;
/// each in-flight operation owns its own state.
///
///   RetryState retry(policy, rng, clock);
///   do { if (try_once()) return true; } while (retry.backoff());
///   return false;
class RetryState {
 public:
  RetryState(const RetryPolicy& policy, Rng& rng, Clock& clock);

  /// True if another attempt is allowed; when it is, sleeps the backoff
  /// delay on the clock before returning. Counts the attempt.
  bool backoff();

  /// Whether another attempt is allowed, without sleeping or counting.
  bool can_retry() const;

  /// The delay the next backoff() would sleep (pre-jitter bounds applied,
  /// jitter drawn fresh per call).
  Duration next_delay() const { return next_delay_; }

  /// Attempts consumed so far (first try counts once backoff() is asked).
  int attempts() const { return attempts_; }

  /// Forgets all history — the operation succeeded and the loop restarts.
  void reset();

 private:
  RetryPolicy policy_;
  Rng* rng_;
  Clock* clock_;
  Duration start_;
  Duration next_delay_;
  int attempts_ = 1;  // the caller has made the first attempt already
};

/// Circuit breaker state machine: closed (normal) → open after
/// `failures_to_open` consecutive failures → half-open after `cooldown`,
/// where exactly one probe is allowed; its outcome closes or re-opens the
/// circuit. Thread-safe.
struct CircuitBreakerConfig {
  int failures_to_open = 4;
  Duration cooldown = std::chrono::milliseconds(250);
  /// Each consecutive re-open stretches the cooldown by this factor, capped
  /// at max_cooldown — a receiver that stays dead is probed ever less often.
  double cooldown_multiplier = 2.0;
  Duration max_cooldown = std::chrono::seconds(5);
};

class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(CircuitBreakerConfig config,
                          Clock& clock = SteadyClock::instance());

  /// Whether the caller may attempt the protected operation now. In the
  /// open state this flips to half-open (and returns true) once the
  /// cooldown has elapsed; in half-open only the first caller per probe
  /// window gets through.
  bool allow();

  void record_success();
  void record_failure();

  State state() const;
  /// Closed→open transitions over this breaker's lifetime.
  std::uint64_t trips() const;
  int consecutive_failures() const;

 private:
  void trip_locked();

  CircuitBreakerConfig config_;
  Clock* clock_;
  mutable std::mutex mu_;
  State state_ = State::kClosed;
  int failures_ = 0;
  int reopen_count_ = 0;       // consecutive open cycles without a success
  bool probe_in_flight_ = false;
  Duration opened_at_{0};
  Duration cooldown_{0};
  std::uint64_t trips_ = 0;
};

}  // namespace smartsock::util
