// key=value configuration files.
//
// The paper's administrator-tunable knobs (probe interval, staleness factor,
// ports, transmitter mode) live in small config files; this parser backs the
// examples and the experiment harness. Lines starting with '#' are comments,
// mirroring the requirement-file syntax.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

namespace smartsock::util {

class Config {
 public:
  Config() = default;

  /// Parses "key = value" lines; '#' begins a comment; blank lines ignored.
  /// Later keys override earlier ones. Returns false on malformed lines
  /// (missing '=') and records the offending line in error().
  bool parse(std::string_view text);

  /// Loads and parses a file. Returns false if unreadable or malformed.
  bool load_file(const std::string& path);

  void set(const std::string& key, const std::string& value);

  std::optional<std::string> get(const std::string& key) const;
  std::string get_or(const std::string& key, const std::string& fallback) const;
  double get_double_or(const std::string& key, double fallback) const;
  std::int64_t get_int_or(const std::string& key, std::int64_t fallback) const;
  bool get_bool_or(const std::string& key, bool fallback) const;

  bool contains(const std::string& key) const { return values_.count(key) > 0; }
  std::size_t size() const { return values_.size(); }
  const std::string& error() const { return error_; }

  const std::map<std::string, std::string>& values() const { return values_; }

 private:
  std::map<std::string, std::string> values_;
  std::string error_;
};

}  // namespace smartsock::util
