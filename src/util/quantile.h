// Incremental quantile estimation (ISSUE 4).
//
// Chambers et al., "Monitoring Networked Applications With Incremental
// Quantile Estimation", motivates keeping running p50/p95/p99 on a hot path
// without buffering samples. This is the classic P² algorithm (Jain &
// Chlamtac, CACM 1985): five markers per tracked quantile, updated with a
// handful of comparisons and one parabolic interpolation per observation —
// O(1) memory and O(1) time regardless of stream length.
//
// A P2Quantile is single-threaded; QuantileSketch bundles the p50/p90/p99
// trio behind a tiny spinlock so a LatencyRecorder shared by N handler
// threads can update it on every sample (the critical section is ~30
// arithmetic ops; contention is cheaper than the allocation-free alternative
// of per-thread sketches plus merge).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace smartsock::util {

/// One P² estimator tracking the `p`-quantile (p in (0,1)) of a stream.
class P2Quantile {
 public:
  explicit P2Quantile(double p = 0.5);

  void add(double x);

  /// Current estimate. Exact while fewer than 5 observations have arrived
  /// (computed from the sorted initial buffer); 0 when empty.
  double value() const;

  std::uint64_t count() const { return count_; }
  double quantile() const { return p_; }
  void reset();

 private:
  double parabolic(int i, double d) const;
  double linear(int i, double d) const;

  double p_;
  std::uint64_t count_ = 0;
  double heights_[5] = {};     // marker heights q_i (ascending)
  double positions_[5] = {};   // actual marker positions n_i (1-based)
  double desired_[5] = {};     // desired positions n'_i
  double increments_[5] = {};  // dn'_i per observation
};

/// The p50/p90/p99 trio every latency surface in this repo reports, updated
/// together under one spinlock. Copyable reads via snapshot().
class QuantileSketch {
 public:
  QuantileSketch();

  void add(double x);

  struct Values {
    std::uint64_t count = 0;
    double p50 = 0;
    double p90 = 0;
    double p99 = 0;
  };
  Values snapshot() const;

  /// Estimate for pct in {50, 90, 99}; any other pct returns the nearest of
  /// the three (callers wanting arbitrary quantiles keep their own sketch).
  double percentile(double pct) const;

  void reset();

 private:
  void lock() const {
    while (spin_.test_and_set(std::memory_order_acquire)) {
    }
  }
  void unlock() const { spin_.clear(std::memory_order_release); }

  mutable std::atomic_flag spin_ = ATOMIC_FLAG_INIT;
  P2Quantile p50_{0.50};
  P2Quantile p90_{0.90};
  P2Quantile p99_{0.99};
};

}  // namespace smartsock::util
