// Clock abstraction.
//
// Components that schedule work (probes, monitors, the wizard's staleness
// sweep) take a `Clock&` so tests and the simulation substrate can drive them
// on a virtual timeline, while production code uses the monotonic wall clock.
#pragma once

#include <chrono>
#include <cstdint>

namespace smartsock::util {

using Duration = std::chrono::nanoseconds;
using TimePoint = std::chrono::steady_clock::time_point;

/// Abstract monotonic clock. now() never decreases.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Nanoseconds since an arbitrary epoch fixed for this clock's lifetime.
  virtual Duration now() = 0;

  /// Blocks (or advances virtual time) for `d`.
  virtual void sleep_for(Duration d) = 0;
};

/// The process monotonic clock (std::chrono::steady_clock).
class SteadyClock final : public Clock {
 public:
  Duration now() override;
  void sleep_for(Duration d) override;

  /// Shared process-wide instance, convenient for default arguments.
  static SteadyClock& instance();
};

/// Converts a duration to fractional seconds.
inline double to_seconds(Duration d) {
  return std::chrono::duration_cast<std::chrono::duration<double>>(d).count();
}

/// Converts a duration to fractional milliseconds.
inline double to_millis(Duration d) {
  return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(d).count();
}

/// Builds a Duration from fractional seconds.
inline Duration from_seconds(double s) {
  return std::chrono::duration_cast<Duration>(std::chrono::duration<double>(s));
}

/// Builds a Duration from fractional milliseconds.
inline Duration from_millis(double ms) {
  return std::chrono::duration_cast<Duration>(std::chrono::duration<double, std::milli>(ms));
}

/// Simple stopwatch over an arbitrary Clock.
class Stopwatch {
 public:
  explicit Stopwatch(Clock& clock) : clock_(&clock), start_(clock.now()) {}

  void reset() { start_ = clock_->now(); }
  Duration elapsed() const { return clock_->now() - start_; }
  double elapsed_seconds() const { return to_seconds(elapsed()); }

 private:
  Clock* clock_;
  Duration start_;
};

}  // namespace smartsock::util
