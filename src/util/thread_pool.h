// Small fixed-size worker pool for data-parallel stages — the matcher's
// per-record requirement evaluation is the motivating user.
//
// parallel_for partitions [0, count) into one contiguous chunk per worker;
// callers write results into index-addressed slots and merge in index order,
// so the output is byte-identical to a serial loop no matter how the chunks
// are scheduled. Determinism comes from the partitioning, not the timing.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace smartsock::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least one).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Runs body(begin, end) over disjoint chunks covering [0, count), one
  /// chunk on the calling thread and the rest on the workers; blocks until
  /// every chunk finished. Safe to call from several threads concurrently —
  /// each call joins on its own completion latch. Do not call from inside a
  /// pool job (the nested call could wait on workers that are all busy).
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t, std::size_t)>& body);

  /// Queues one fire-and-forget job (the reactor's offload path). Jobs
  /// queued before destruction are drained before the workers exit.
  void submit(std::function<void()> job);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Pins the calling thread to one CPU (modulo the machine's CPU count, so a
/// shard index works directly). Best-effort: false when the platform has no
/// affinity API or the call is rejected; callers proceed unpinned.
bool pin_current_thread(std::size_t cpu);

}  // namespace smartsock::util
