#include "util/quantile.h"

#include <algorithm>
#include <cmath>

namespace smartsock::util {

P2Quantile::P2Quantile(double p) : p_(p) { reset(); }

void P2Quantile::reset() {
  count_ = 0;
  for (int i = 0; i < 5; ++i) {
    heights_[i] = 0;
    positions_[i] = static_cast<double>(i + 1);
    desired_[i] = 0;
    increments_[i] = 0;
  }
  desired_[0] = 1;
  desired_[1] = 1 + 2 * p_;
  desired_[2] = 1 + 4 * p_;
  desired_[3] = 3 + 2 * p_;
  desired_[4] = 5;
  increments_[0] = 0;
  increments_[1] = p_ / 2;
  increments_[2] = p_;
  increments_[3] = (1 + p_) / 2;
  increments_[4] = 1;
}

double P2Quantile::parabolic(int i, double d) const {
  return heights_[i] +
         d / (positions_[i + 1] - positions_[i - 1]) *
             ((positions_[i] - positions_[i - 1] + d) *
                  (heights_[i + 1] - heights_[i]) /
                  (positions_[i + 1] - positions_[i]) +
              (positions_[i + 1] - positions_[i] - d) *
                  (heights_[i] - heights_[i - 1]) /
                  (positions_[i] - positions_[i - 1]));
}

double P2Quantile::linear(int i, double d) const {
  int j = i + static_cast<int>(d);
  return heights_[i] + d * (heights_[j] - heights_[i]) /
                           (positions_[j] - positions_[i]);
}

void P2Quantile::add(double x) {
  if (count_ < 5) {
    heights_[count_++] = x;
    if (count_ == 5) std::sort(heights_, heights_ + 5);
    return;
  }

  int k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }

  for (int i = k + 1; i < 5; ++i) positions_[i] += 1;
  for (int i = 0; i < 5; ++i) desired_[i] += increments_[i];

  for (int i = 1; i <= 3; ++i) {
    double d = desired_[i] - positions_[i];
    if ((d >= 1 && positions_[i + 1] - positions_[i] > 1) ||
        (d <= -1 && positions_[i - 1] - positions_[i] < -1)) {
      double step = d < 0 ? -1 : 1;
      double candidate = parabolic(i, step);
      if (heights_[i - 1] < candidate && candidate < heights_[i + 1]) {
        heights_[i] = candidate;
      } else {
        heights_[i] = linear(i, step);
      }
      positions_[i] += step;
    }
  }
  ++count_;
}

double P2Quantile::value() const {
  if (count_ == 0) return 0;
  if (count_ >= 5) return heights_[2];
  // Exact small-sample quantile over the (unsorted until 5) buffer.
  double sorted[5];
  std::copy(heights_, heights_ + count_, sorted);
  std::sort(sorted, sorted + count_);
  auto rank = static_cast<std::size_t>(
      std::ceil(p_ * static_cast<double>(count_)));
  if (rank == 0) rank = 1;
  if (rank > count_) rank = count_;
  return sorted[rank - 1];
}

QuantileSketch::QuantileSketch() = default;

void QuantileSketch::add(double x) {
  lock();
  p50_.add(x);
  p90_.add(x);
  p99_.add(x);
  unlock();
}

QuantileSketch::Values QuantileSketch::snapshot() const {
  lock();
  Values out;
  out.count = p50_.count();
  out.p50 = p50_.value();
  out.p90 = p90_.value();
  out.p99 = p99_.value();
  unlock();
  return out;
}

double QuantileSketch::percentile(double pct) const {
  lock();
  double out;
  if (pct <= 70) {
    out = p50_.value();
  } else if (pct <= 94.5) {
    out = p90_.value();
  } else {
    out = p99_.value();
  }
  unlock();
  return out;
}

void QuantileSketch::reset() {
  lock();
  p50_.reset();
  p90_.reset();
  p99_.reset();
  unlock();
}

}  // namespace smartsock::util
