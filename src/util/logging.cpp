#include "util/logging.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <cstring>

#include "util/crashfmt.h"

namespace smartsock::util {

// --- LogRing -----------------------------------------------------------------

LogRing::LogRing(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity), slots_(new Slot[capacity_]) {}

void LogRing::append(LogLevel level, std::string_view component, std::string_view message) {
  std::uint64_t seq = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[seq % capacity_];
  slot.ticket.store(2 * seq + 1, std::memory_order_release);  // writing

  char* out = slot.text;
  std::size_t len = 0;
  auto emit = [&](std::string_view s) {
    std::size_t n = std::min(s.size(), kLineBytes - len);
    std::memcpy(out + len, s.data(), n);
    len += n;
  };
  emit("[");
  emit(log_level_tag(level));
  emit("] ");
  emit(component);
  emit(": ");
  emit(message);
  slot.len = static_cast<std::uint16_t>(len);

  slot.ticket.store(2 * seq + 2, std::memory_order_release);  // complete
}

std::vector<std::string> LogRing::snapshot() const {
  std::uint64_t total = head_.load(std::memory_order_acquire);
  std::uint64_t start = total > capacity_ ? total - capacity_ : 0;
  std::vector<std::string> out;
  out.reserve(static_cast<std::size_t>(total - start));
  for (std::uint64_t i = start; i < total; ++i) {
    const Slot& slot = slots_[i % capacity_];
    std::uint64_t before = slot.ticket.load(std::memory_order_acquire);
    if (before != 2 * i + 2) continue;  // unwritten, mid-write, or lapped
    std::string line(slot.text, std::min<std::size_t>(slot.len, kLineBytes));
    if (slot.ticket.load(std::memory_order_acquire) != before) continue;  // torn
    out.push_back(std::move(line));
  }
  return out;
}

void LogRing::crash_dump(int fd) const {
  CrashWriter w(fd);
  std::uint64_t total = head_.load(std::memory_order_acquire);
  std::uint64_t start = total > capacity_ ? total - capacity_ : 0;
  for (std::uint64_t i = start; i < total; ++i) {
    const Slot& slot = slots_[i % capacity_];
    if (slot.ticket.load(std::memory_order_acquire) != 2 * i + 2) continue;
    w.str(std::string_view(slot.text, std::min<std::size_t>(slot.len, kLineBytes)));
    w.put('\n');
  }
}

std::string_view log_level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?????";
}

LogLevel parse_log_level(std::string_view text) {
  std::string lower(text);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (lower == "trace") return LogLevel::kTrace;
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  return LogLevel::kInfo;
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

Logger::Logger() : level_(static_cast<int>(LogLevel::kWarn)) {
  if (const char* env = std::getenv("SMARTSOCK_LOG")) {
    level_.store(static_cast<int>(parse_log_level(env)), std::memory_order_relaxed);
  }
}

void Logger::set_level(LogLevel level) {
  level_.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel Logger::level() const {
  return static_cast<LogLevel>(level_.load(std::memory_order_relaxed));
}

void Logger::reset_from_env(LogLevel fallback) {
  LogLevel level = fallback;
  if (const char* env = std::getenv("SMARTSOCK_LOG")) {
    level = parse_log_level(env);
  }
  set_level(level);
}

void Logger::set_sink(Sink sink) {
  std::lock_guard<std::mutex> lock(mu_);
  sink_ = std::move(sink);
}

void Logger::attach_ring(LogRing* ring) {
  ring_.store(ring, std::memory_order_release);
}

void Logger::log(LogLevel level, std::string_view component, std::string_view message) {
  if (!enabled(level)) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (LogRing* ring = ring_.load(std::memory_order_acquire)) {
    ring->append(level, component, message);
  }
  if (sink_) {
    sink_(level, component, message);
    return;
  }
  std::fprintf(stderr, "[%.*s] %.*s: %.*s\n",
               static_cast<int>(log_level_tag(level).size()), log_level_tag(level).data(),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace smartsock::util
