#include "util/logging.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace smartsock::util {

std::string_view log_level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?????";
}

LogLevel parse_log_level(std::string_view text) {
  std::string lower(text);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (lower == "trace") return LogLevel::kTrace;
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  return LogLevel::kInfo;
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

Logger::Logger() : level_(static_cast<int>(LogLevel::kWarn)) {
  if (const char* env = std::getenv("SMARTSOCK_LOG")) {
    level_.store(static_cast<int>(parse_log_level(env)), std::memory_order_relaxed);
  }
}

void Logger::set_level(LogLevel level) {
  level_.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel Logger::level() const {
  return static_cast<LogLevel>(level_.load(std::memory_order_relaxed));
}

void Logger::reset_from_env(LogLevel fallback) {
  LogLevel level = fallback;
  if (const char* env = std::getenv("SMARTSOCK_LOG")) {
    level = parse_log_level(env);
  }
  set_level(level);
}

void Logger::set_sink(Sink sink) {
  std::lock_guard<std::mutex> lock(mu_);
  sink_ = std::move(sink);
}

void Logger::log(LogLevel level, std::string_view component, std::string_view message) {
  if (!enabled(level)) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (sink_) {
    sink_(level, component, message);
    return;
  }
  std::fprintf(stderr, "[%.*s] %.*s: %.*s\n",
               static_cast<int>(log_level_tag(level).size()), log_level_tag(level).data(),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace smartsock::util
