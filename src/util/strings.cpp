#include "util/strings.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdio>

namespace smartsock::util {

std::vector<std::string_view> split(std::string_view text, char sep, bool keep_empty) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) pos = text.size();
    std::string_view field = text.substr(start, pos - start);
    if (!field.empty() || keep_empty) out.push_back(field);
    if (pos == text.size()) break;
    start = pos + 1;
  }
  return out;
}

std::vector<std::string_view> split_whitespace(std::string_view text) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    std::size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i > start) out.push_back(text.substr(start, i - start));
  }
  return out;
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  while (begin < text.size() && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  std::size_t end = text.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::optional<double> parse_double(std::string_view text) {
  if (text.empty()) return std::nullopt;
  double value = 0.0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return value;
}

std::optional<std::int64_t> parse_int(std::string_view text) {
  if (text.empty()) return std::nullopt;
  std::int64_t value = 0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return value;
}

std::optional<std::uint64_t> parse_uint(std::string_view text) {
  if (text.empty()) return std::nullopt;
  std::uint64_t value = 0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return value;
}

std::string format_double(double value) {
  if (value == 0.0) return "0";
  double magnitude = value < 0 ? -value : value;

  // Prefer plain fixed notation in the humane range — the requirement
  // language's lexer (thesis Fig 4.1) has no exponent syntax, so values
  // printed back into requirement text must stay parseable.
  if (magnitude >= 1e-4 && magnitude < 1e15) {
    if (value == static_cast<double>(static_cast<long long>(value))) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
      return buf;
    }
    for (int precision = 1; precision <= 17; ++precision) {
      char candidate[64];
      std::snprintf(candidate, sizeof(candidate), "%.*f", precision, value);
      double parsed = 0.0;
      std::sscanf(candidate, "%lf", &parsed);
      if (parsed == value) return candidate;
    }
  }

  // Extreme magnitudes: shortest round-tripping %g (may use an exponent;
  // fine for the ASCII wire formats, whose parser accepts it).
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  for (int precision = 1; precision < 17; ++precision) {
    char candidate[64];
    std::snprintf(candidate, sizeof(candidate), "%.*g", precision, value);
    double parsed = 0.0;
    std::sscanf(candidate, "%lf", &parsed);
    if (parsed == value) return candidate;
  }
  return buf;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

bool looks_like_ipv4(std::string_view text) {
  auto octets = split(text, '.', /*keep_empty=*/true);
  if (octets.size() != 4) return false;
  for (std::string_view octet : octets) {
    auto value = parse_uint(octet);
    if (!value || *value > 255) return false;
  }
  return true;
}

}  // namespace smartsock::util
