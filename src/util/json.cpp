#include "util/json.h"

#include <cctype>
#include <cstdlib>

namespace smartsock::util {

namespace {

constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> run() {
    skip_ws();
    JsonValue value;
    if (!parse_value(value, 0)) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  bool consume(char expected) {
    if (eof() || text_[pos_] != expected) return false;
    ++pos_;
    return true;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > kMaxDepth || eof()) return false;
    switch (peek()) {
      case '{':
        return parse_object(out, depth);
      case '[':
        return parse_array(out, depth);
      case '"':
        out.kind = JsonValue::Kind::kString;
        return parse_string(out.string);
      case 't':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = true;
        return consume_literal("true");
      case 'f':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = false;
        return consume_literal("false");
      case 'n':
        out.kind = JsonValue::Kind::kNull;
        return consume_literal("null");
      default:
        return parse_number(out);
    }
  }

  bool parse_object(JsonValue& out, int depth) {
    out.kind = JsonValue::Kind::kObject;
    consume('{');
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (eof() || peek() != '"' || !parse_string(key)) return false;
      skip_ws();
      if (!consume(':')) return false;
      skip_ws();
      JsonValue member;
      if (!parse_value(member, depth + 1)) return false;
      out.object.emplace_back(std::move(key), std::move(member));
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return false;
    }
  }

  bool parse_array(JsonValue& out, int depth) {
    out.kind = JsonValue::Kind::kArray;
    consume('[');
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      skip_ws();
      JsonValue element;
      if (!parse_value(element, depth + 1)) return false;
      out.array.push_back(std::move(element));
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return false;
    }
  }

  bool parse_string(std::string& out) {
    consume('"');
    out.clear();
    while (true) {
      if (eof()) return false;
      char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;  // bare control
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (eof()) return false;
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          if (!parse_hex4(code)) return false;
          // Surrogate pair → one code point; a lone surrogate round-trips
          // as U+FFFD rather than failing the whole document.
          if (code >= 0xD800 && code <= 0xDBFF && text_.substr(pos_, 2) == "\\u") {
            pos_ += 2;
            unsigned low = 0;
            if (!parse_hex4(low)) return false;
            if (low >= 0xDC00 && low <= 0xDFFF) {
              code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            } else {
              code = 0xFFFD;
            }
          } else if (code >= 0xD800 && code <= 0xDFFF) {
            code = 0xFFFD;
          }
          append_utf8(out, code);
          break;
        }
        default:
          return false;
      }
    }
  }

  bool parse_hex4(unsigned& out) {
    if (pos_ + 4 > text_.size()) return false;
    out = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_++];
      out <<= 4;
      if (c >= '0' && c <= '9') out |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') out |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') out |= static_cast<unsigned>(c - 'A' + 10);
      else return false;
    }
    return true;
  }

  static void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  bool parse_number(JsonValue& out) {
    std::size_t start = pos_;
    if (consume('-')) {
      // sign consumed
    }
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) return false;
    if (!consume('0')) {
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (consume('.')) {
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) return false;
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!consume('+')) consume('-');
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) return false;
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    // The grammar above admits exactly what strtod parses, so conversion
    // cannot fail; a NUL-terminated copy keeps strtod off the raw view.
    std::string token(text_.substr(start, pos_ - start));
    out.kind = JsonValue::Kind::kNumber;
    out.number = std::strtod(token.c_str(), nullptr);
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : object) {
    if (name == key) return &value;
  }
  return nullptr;
}

double JsonValue::number_or(std::string_view key, double fallback) const {
  const JsonValue* member = find(key);
  return member && member->is_number() ? member->number : fallback;
}

std::string JsonValue::string_or(std::string_view key, std::string_view fallback) const {
  const JsonValue* member = find(key);
  return member && member->is_string() ? member->string : std::string(fallback);
}

std::uint64_t JsonValue::uint_or(std::string_view key, std::uint64_t fallback) const {
  const JsonValue* member = find(key);
  if (!member || !member->is_number()) return fallback;
  if (member->number <= 0.0) return 0;
  return static_cast<std::uint64_t>(member->number);
}

std::optional<JsonValue> json_parse(std::string_view text) {
  return Parser(text).run();
}

}  // namespace smartsock::util
