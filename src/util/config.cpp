#include "util/config.h"

#include <fstream>
#include <sstream>

#include "util/strings.h"

namespace smartsock::util {

bool Config::parse(std::string_view text) {
  std::size_t line_no = 0;
  for (std::string_view raw : split(text, '\n', /*keep_empty=*/true)) {
    ++line_no;
    std::string_view line = raw;
    if (std::size_t hash = line.find('#'); hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    line = trim(line);
    if (line.empty()) continue;
    std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      error_ = "line " + std::to_string(line_no) + ": expected key=value";
      return false;
    }
    std::string key(trim(line.substr(0, eq)));
    std::string value(trim(line.substr(eq + 1)));
    if (key.empty()) {
      error_ = "line " + std::to_string(line_no) + ": empty key";
      return false;
    }
    values_[key] = value;
  }
  return true;
}

bool Config::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    error_ = "cannot open " + path;
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

void Config::set(const std::string& key, const std::string& value) { values_[key] = value; }

std::optional<std::string> Config::get(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Config::get_or(const std::string& key, const std::string& fallback) const {
  auto value = get(key);
  return value ? *value : fallback;
}

double Config::get_double_or(const std::string& key, double fallback) const {
  auto value = get(key);
  if (!value) return fallback;
  auto parsed = parse_double(*value);
  return parsed ? *parsed : fallback;
}

std::int64_t Config::get_int_or(const std::string& key, std::int64_t fallback) const {
  auto value = get(key);
  if (!value) return fallback;
  auto parsed = parse_int(*value);
  return parsed ? *parsed : fallback;
}

bool Config::get_bool_or(const std::string& key, bool fallback) const {
  auto value = get(key);
  if (!value) return fallback;
  std::string lower = to_lower(*value);
  if (lower == "true" || lower == "1" || lower == "yes" || lower == "on") return true;
  if (lower == "false" || lower == "0" || lower == "no" || lower == "off") return false;
  return fallback;
}

}  // namespace smartsock::util
