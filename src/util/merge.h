// Latency-summary merging (ISSUE 9 satellite).
//
// Both the fleet aggregator (merging N daemons' histogram snapshots into
// one fleet-wide series) and the time-series history rollup (folding many
// in-window samples into one window) need the same operation: combine
// several {count, mean, p50/p90/p99, buckets} summaries into one. Exact
// quantile merging would need the raw samples, which none of the producers
// retain — so this is the standard approximation: bucket counts sum exactly
// (the geometric bucket bounds are identical across every LatencyRecorder),
// and mean/quantiles are count-weighted averages. That keeps the merge
// associative and order-independent, never invents a value outside the
// input range, and degrades gracefully: merging one summary is the
// identity, merging equal distributions is exact.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace smartsock::util {

/// One histogram/quantile summary, shaped after obs::HistogramStats but
/// kept in util/ so both obs/ layers (metrics below net, fleet above) and
/// future callers can share it without an include cycle.
struct LatencySummary {
  std::uint64_t count = 0;
  double mean_us = 0;
  double p50_us = 0;
  double p90_us = 0;
  double p99_us = 0;
  /// (exclusive upper bound in µs, count) per non-empty bucket.
  std::vector<std::pair<double, std::uint64_t>> buckets;
};

/// Merges summaries into one: counts and buckets sum (buckets matched by
/// upper bound, result sorted ascending), mean and quantiles are weighted
/// by each input's count. Inputs with count == 0 contribute nothing; when
/// every input is empty the result is an all-zero summary.
LatencySummary merge_latency_summaries(const std::vector<LatencySummary>& inputs);

}  // namespace smartsock::util
