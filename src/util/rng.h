// Deterministic random number generation.
//
// Every stochastic element of the simulation (cross traffic, jitter, random
// server selection, rshaper bandwidth draws) pulls from an explicitly seeded
// Rng so experiments are reproducible run-to-run — the paper's "random"
// baseline must be a *fair* but repeatable comparator.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace smartsock::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    std::uniform_int_distribution<std::int64_t> dist(lo, hi);
    return dist(engine_);
  }

  /// Gaussian with the given mean and standard deviation.
  double gaussian(double mean, double stddev) {
    std::normal_distribution<double> dist(mean, stddev);
    return dist(engine_);
  }

  /// Exponential with the given mean (used for cross-traffic interarrivals).
  double exponential(double mean) {
    std::exponential_distribution<double> dist(1.0 / mean);
    return dist(engine_);
  }

  /// Bernoulli trial.
  bool chance(double p) {
    std::bernoulli_distribution dist(p);
    return dist(engine_);
  }

  /// Picks k distinct indices out of [0, n) — the "random server selection"
  /// baseline the paper compares against.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace smartsock::util
