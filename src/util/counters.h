// Traffic accounting.
//
// Table 5.2 of the paper reports per-component CPU / memory / network
// bandwidth usage. The paper measured with `top` and a libpcap dumper; we
// instrument the components directly: every socket wrapper owns a
// TrafficCounter, and the resource-usage bench reads the registry.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/clock.h"
#include "util/quantile.h"

namespace smartsock::util {

/// Lock-free byte/message counters for one direction of one component.
class TrafficCounter {
 public:
  void add_sent(std::uint64_t bytes) {
    bytes_sent_.fetch_add(bytes, std::memory_order_relaxed);
    msgs_sent_.fetch_add(1, std::memory_order_relaxed);
  }
  void add_received(std::uint64_t bytes) {
    bytes_received_.fetch_add(bytes, std::memory_order_relaxed);
    msgs_received_.fetch_add(1, std::memory_order_relaxed);
  }

  std::uint64_t bytes_sent() const { return bytes_sent_.load(std::memory_order_relaxed); }
  std::uint64_t bytes_received() const { return bytes_received_.load(std::memory_order_relaxed); }
  std::uint64_t messages_sent() const { return msgs_sent_.load(std::memory_order_relaxed); }
  std::uint64_t messages_received() const { return msgs_received_.load(std::memory_order_relaxed); }

  void reset() {
    bytes_sent_.store(0, std::memory_order_relaxed);
    bytes_received_.store(0, std::memory_order_relaxed);
    msgs_sent_.store(0, std::memory_order_relaxed);
    msgs_received_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> bytes_received_{0};
  std::atomic<std::uint64_t> msgs_sent_{0};
  std::atomic<std::uint64_t> msgs_received_{0};
};

struct ComponentUsage {
  std::string component;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_received = 0;
  double send_rate_kbps = 0.0;     // KB per second over the sampled window
  double receive_rate_kbps = 0.0;  // KB per second over the sampled window
};

/// Named registry of counters; components register themselves by name.
/// Multiple components may share a name (e.g. 11 probes register as
/// "system_probe"); their traffic is summed on read.
class TrafficRegistry {
 public:
  static TrafficRegistry& instance();

  /// Returns a counter bound to `component`. The registry owns the counter;
  /// the pointer stays valid for the process lifetime.
  TrafficCounter* register_component(const std::string& component);

  /// Snapshot of all components, with rates computed over `window` seconds.
  std::vector<ComponentUsage> snapshot(double window_seconds) const;

  /// Zeroes every counter (used between bench phases).
  void reset_all();

 private:
  struct Entry {
    std::string component;
    std::unique_ptr<TrafficCounter> counter;
  };

  mutable std::mutex mu_;
  std::vector<Entry> entries_;
};

/// Lock-free latency histogram for per-query accounting (wizard fast path).
///
/// Samples land in geometric buckets spanning 1 µs .. ~10 s at ~6.5%
/// resolution; record() is wait-free so N handler threads can share one
/// recorder. percentile() walks the buckets and returns the geometric
/// midpoint of the one holding the requested rank — approximate, but
/// bounded by the bucket width.
class LatencyRecorder {
 public:
  static constexpr std::size_t kBuckets = 256;

  void record_us(double micros);

  std::uint64_t count() const { return total_count_.load(std::memory_order_relaxed); }
  double mean_us() const;
  /// pct in (0, 100]; returns 0 when no samples were recorded. Bucket-walk
  /// estimate (geometric midpoint of the bucket holding the rank), bounded
  /// by the ~6.5% bucket width.
  double percentile(double pct) const;
  /// P² incremental estimate for pct in {50, 90, 99} — the tail values the
  /// snapshot formats report (ISSUE 4). Sharper than the bucket walk on
  /// heavy-tailed streams and O(1) memory.
  double sketch_percentile(double pct) const { return sketch_.percentile(pct); }
  QuantileSketch::Values sketch_values() const { return sketch_.snapshot(); }
  void reset();

  /// Exclusive upper bound of bucket `i` in µs (exposition formats publish
  /// the bucket boundaries, not just the percentiles).
  static double bucket_upper_us(std::size_t bucket);

  /// (upper_bound_us, count) for every non-empty bucket, in bucket order.
  /// A concurrent record_us may or may not be included — each bucket is read
  /// atomically, so the result never contains torn counts.
  std::vector<std::pair<double, std::uint64_t>> nonzero_buckets() const;

 private:
  static std::size_t bucket_for(double micros);
  static double bucket_mid_us(std::size_t bucket);

  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> total_count_{0};
  std::atomic<std::uint64_t> total_tenth_us_{0};  // sum in 0.1 µs units
  QuantileSketch sketch_;
};

/// Reads the resident set size of the current process in KB (Linux /proc).
/// Returns 0 if unavailable.
std::uint64_t current_rss_kb();

}  // namespace smartsock::util
