#include "util/thread_pool.h"

#include <algorithm>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#include <unistd.h>
#endif

namespace smartsock::util {

bool pin_current_thread(std::size_t cpu) {
#ifdef __linux__
  long cpus = ::sysconf(_SC_NPROCESSORS_ONLN);
  if (cpus <= 0) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<int>(cpu % static_cast<std::size_t>(cpus)), &set);
  return ::pthread_setaffinity_np(::pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and nothing left to drain
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

void ThreadPool::submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t, std::size_t)>& body) {
  if (count == 0) return;
  std::size_t chunks = std::min(count, workers_.size() + 1);
  if (chunks <= 1) {
    body(0, count);
    return;
  }

  struct Latch {
    std::mutex mu;
    std::condition_variable cv;
    std::size_t pending;
  } latch;
  latch.pending = chunks - 1;

  // Chunk c gets count/chunks records, the remainder spread over the first
  // chunks. Chunk 0 runs inline on the caller.
  std::size_t per = count / chunks;
  std::size_t extra = count % chunks;
  std::size_t first_end = per + (extra > 0 ? 1 : 0);
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t begin = first_end;
    for (std::size_t c = 1; c < chunks; ++c) {
      std::size_t end = begin + per + (c < extra ? 1 : 0);
      queue_.push_back([&latch, &body, begin, end] {
        body(begin, end);
        std::lock_guard<std::mutex> done(latch.mu);
        if (--latch.pending == 0) latch.cv.notify_one();
      });
      begin = end;
    }
  }
  cv_.notify_all();

  body(0, first_end);
  std::unique_lock<std::mutex> done(latch.mu);
  latch.cv.wait(done, [&latch] { return latch.pending == 0; });
}

}  // namespace smartsock::util
