// Tiny command-line flag parser for the deployment tools.
//
// Supports "--key value", "--key=value" and bare "--flag" booleans; anything
// not starting with "--" is a positional argument. Unknown flags are
// collected so tools can reject them with a usage message.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace smartsock::util {

class Args {
 public:
  Args(int argc, char** argv, const std::vector<std::string>& known_flags);

  bool has(const std::string& flag) const { return values_.count(flag) > 0; }
  std::optional<std::string> get(const std::string& flag) const;
  std::string get_or(const std::string& flag, const std::string& fallback) const;
  double get_double_or(const std::string& flag, double fallback) const;
  std::int64_t get_int_or(const std::string& flag, std::int64_t fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::vector<std::string>& unknown() const { return unknown_; }
  bool ok() const { return unknown_.empty(); }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  std::vector<std::string> unknown_;
};

}  // namespace smartsock::util
