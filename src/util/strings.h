// String helpers shared by the ASCII wire formats.
//
// The thesis deliberately transmits probe reports as ASCII key=value strings
// (endianness-safe across the heterogeneous testbed), so robust splitting and
// number parsing sit on the hot path of every status report.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace smartsock::util {

/// Splits on a single character; keeps empty fields when keep_empty is true.
std::vector<std::string_view> split(std::string_view text, char sep, bool keep_empty = false);

/// Splits on any run of whitespace; never yields empty fields.
std::vector<std::string_view> split_whitespace(std::string_view text);

/// Strips leading/trailing whitespace.
std::string_view trim(std::string_view text);

/// True if `text` begins with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// Strict parse of a decimal double; rejects trailing garbage.
std::optional<double> parse_double(std::string_view text);

/// Strict parse of a decimal signed 64-bit integer; rejects trailing garbage.
std::optional<std::int64_t> parse_int(std::string_view text);

/// Strict parse of an unsigned 64-bit integer.
std::optional<std::uint64_t> parse_uint(std::string_view text);

/// Formats a double with enough digits to round-trip, no trailing zeros noise.
std::string format_double(double value);

/// Joins strings with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Lower-cases ASCII.
std::string to_lower(std::string_view text);

/// True if the string looks like a dotted-quad IPv4 address (4 numeric octets).
bool looks_like_ipv4(std::string_view text);

}  // namespace smartsock::util
