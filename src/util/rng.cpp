#include "util/rng.h"

#include <algorithm>
#include <numeric>

namespace smartsock::util {

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  std::vector<std::size_t> all(n);
  std::iota(all.begin(), all.end(), std::size_t{0});
  std::shuffle(all.begin(), all.end(), engine_);
  if (k < n) all.resize(k);
  return all;
}

}  // namespace smartsock::util
