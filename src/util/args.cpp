#include "util/args.h"

#include <algorithm>

#include "util/strings.h"

namespace smartsock::util {

Args::Args(int argc, char** argv, const std::vector<std::string>& known_flags) {
  auto is_known = [&](const std::string& flag) {
    return std::find(known_flags.begin(), known_flags.end(), flag) != known_flags.end();
  };

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string flag = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (std::size_t eq = flag.find('='); eq != std::string::npos) {
      value = flag.substr(eq + 1);
      flag = flag.substr(0, eq);
      has_value = true;
    }
    if (!is_known(flag)) {
      unknown_.push_back(flag);
      continue;
    }
    if (!has_value && i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      value = argv[++i];
      has_value = true;
    }
    values_[flag] = has_value ? value : "true";
  }
}

std::optional<std::string> Args::get(const std::string& flag) const {
  auto it = values_.find(flag);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Args::get_or(const std::string& flag, const std::string& fallback) const {
  auto value = get(flag);
  return value ? *value : fallback;
}

double Args::get_double_or(const std::string& flag, double fallback) const {
  auto value = get(flag);
  if (!value) return fallback;
  auto parsed = parse_double(*value);
  return parsed ? *parsed : fallback;
}

std::int64_t Args::get_int_or(const std::string& flag, std::int64_t fallback) const {
  auto value = get(flag);
  if (!value) return fallback;
  auto parsed = parse_int(*value);
  return parsed ? *parsed : fallback;
}

}  // namespace smartsock::util
