#include "util/counters.h"

#include <fstream>
#include <map>
#include <memory>
#include <sstream>

namespace smartsock::util {

TrafficRegistry& TrafficRegistry::instance() {
  static TrafficRegistry registry;
  return registry;
}

TrafficCounter* TrafficRegistry::register_component(const std::string& component) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.push_back(Entry{component, std::make_unique<TrafficCounter>()});
  return entries_.back().counter.get();
}

std::vector<ComponentUsage> TrafficRegistry::snapshot(double window_seconds) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, ComponentUsage> merged;
  for (const Entry& entry : entries_) {
    ComponentUsage& usage = merged[entry.component];
    usage.component = entry.component;
    usage.bytes_sent += entry.counter->bytes_sent();
    usage.bytes_received += entry.counter->bytes_received();
    usage.messages_sent += entry.counter->messages_sent();
    usage.messages_received += entry.counter->messages_received();
  }
  std::vector<ComponentUsage> out;
  out.reserve(merged.size());
  for (auto& [name, usage] : merged) {
    if (window_seconds > 0) {
      usage.send_rate_kbps = static_cast<double>(usage.bytes_sent) / 1024.0 / window_seconds;
      usage.receive_rate_kbps =
          static_cast<double>(usage.bytes_received) / 1024.0 / window_seconds;
    }
    out.push_back(std::move(usage));
  }
  return out;
}

void TrafficRegistry::reset_all() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Entry& entry : entries_) entry.counter->reset();
}

std::uint64_t current_rss_kb() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      std::istringstream stream(line.substr(6));
      std::uint64_t kb = 0;
      stream >> kb;
      return kb;
    }
  }
  return 0;
}

}  // namespace smartsock::util
