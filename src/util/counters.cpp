#include "util/counters.h"

#include <cmath>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>

namespace smartsock::util {

TrafficRegistry& TrafficRegistry::instance() {
  static TrafficRegistry registry;
  return registry;
}

TrafficCounter* TrafficRegistry::register_component(const std::string& component) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.push_back(Entry{component, std::make_unique<TrafficCounter>()});
  return entries_.back().counter.get();
}

std::vector<ComponentUsage> TrafficRegistry::snapshot(double window_seconds) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, ComponentUsage> merged;
  for (const Entry& entry : entries_) {
    ComponentUsage& usage = merged[entry.component];
    usage.component = entry.component;
    usage.bytes_sent += entry.counter->bytes_sent();
    usage.bytes_received += entry.counter->bytes_received();
    usage.messages_sent += entry.counter->messages_sent();
    usage.messages_received += entry.counter->messages_received();
  }
  std::vector<ComponentUsage> out;
  out.reserve(merged.size());
  for (auto& [name, usage] : merged) {
    if (window_seconds > 0) {
      usage.send_rate_kbps = static_cast<double>(usage.bytes_sent) / 1024.0 / window_seconds;
      usage.receive_rate_kbps =
          static_cast<double>(usage.bytes_received) / 1024.0 / window_seconds;
    }
    out.push_back(std::move(usage));
  }
  return out;
}

void TrafficRegistry::reset_all() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Entry& entry : entries_) entry.counter->reset();
}

namespace {

// Bucket i ends at kGrowth^(i+1) µs; kGrowth^256 ≈ 1e7 µs (10 s).
const double kLogGrowth = std::log(1e7) / LatencyRecorder::kBuckets;

}  // namespace

std::size_t LatencyRecorder::bucket_for(double micros) {
  if (!(micros > 1.0)) return 0;
  auto bucket = static_cast<std::size_t>(std::log(micros) / kLogGrowth);
  return bucket < kBuckets ? bucket : kBuckets - 1;
}

double LatencyRecorder::bucket_mid_us(std::size_t bucket) {
  // Geometric midpoint of [growth^bucket, growth^(bucket+1)).
  return std::exp(kLogGrowth * (static_cast<double>(bucket) + 0.5));
}

double LatencyRecorder::bucket_upper_us(std::size_t bucket) {
  return std::exp(kLogGrowth * (static_cast<double>(bucket) + 1.0));
}

std::vector<std::pair<double, std::uint64_t>> LatencyRecorder::nonzero_buckets() const {
  std::vector<std::pair<double, std::uint64_t>> out;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    std::uint64_t n = buckets_[i].load(std::memory_order_relaxed);
    if (n != 0) out.emplace_back(bucket_upper_us(i), n);
  }
  return out;
}

void LatencyRecorder::record_us(double micros) {
  if (micros < 0) micros = 0;
  buckets_[bucket_for(micros)].fetch_add(1, std::memory_order_relaxed);
  total_count_.fetch_add(1, std::memory_order_relaxed);
  total_tenth_us_.fetch_add(static_cast<std::uint64_t>(micros * 10.0),
                            std::memory_order_relaxed);
  sketch_.add(micros);
}

double LatencyRecorder::mean_us() const {
  std::uint64_t n = total_count_.load(std::memory_order_relaxed);
  if (n == 0) return 0.0;
  return static_cast<double>(total_tenth_us_.load(std::memory_order_relaxed)) / 10.0 /
         static_cast<double>(n);
}

double LatencyRecorder::percentile(double pct) const {
  std::uint64_t n = total_count_.load(std::memory_order_relaxed);
  if (n == 0) return 0.0;
  if (pct < 0) pct = 0;
  if (pct > 100) pct = 100;
  auto target =
      static_cast<std::uint64_t>(std::ceil(pct / 100.0 * static_cast<double>(n)));
  if (target == 0) target = 1;
  if (target > n) target = n;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= target) return bucket_mid_us(i);
  }
  return bucket_mid_us(kBuckets - 1);
}

void LatencyRecorder::reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  total_count_.store(0, std::memory_order_relaxed);
  total_tenth_us_.store(0, std::memory_order_relaxed);
  sketch_.reset();
}

std::uint64_t current_rss_kb() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      std::istringstream stream(line.substr(6));
      std::uint64_t kb = 0;
      stream >> kb;
      return kb;
    }
  }
  return 0;
}

}  // namespace smartsock::util
