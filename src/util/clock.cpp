#include "util/clock.h"

#include <thread>

namespace smartsock::util {

Duration SteadyClock::now() {
  return std::chrono::steady_clock::now().time_since_epoch();
}

void SteadyClock::sleep_for(Duration d) {
  if (d > Duration::zero()) std::this_thread::sleep_for(d);
}

SteadyClock& SteadyClock::instance() {
  static SteadyClock clock;
  return clock;
}

}  // namespace smartsock::util
