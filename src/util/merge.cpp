#include "util/merge.h"

#include <algorithm>
#include <map>

namespace smartsock::util {

LatencySummary merge_latency_summaries(const std::vector<LatencySummary>& inputs) {
  LatencySummary out;
  // Bucket bounds are doubles computed from the same geometric table in
  // every producer, so exact == matching is safe; an ordered map keeps the
  // merged bucket list sorted without a second pass.
  std::map<double, std::uint64_t> buckets;
  double weighted_mean = 0, weighted_p50 = 0, weighted_p90 = 0, weighted_p99 = 0;
  for (const LatencySummary& input : inputs) {
    if (input.count == 0) continue;
    const double weight = static_cast<double>(input.count);
    out.count += input.count;
    weighted_mean += weight * input.mean_us;
    weighted_p50 += weight * input.p50_us;
    weighted_p90 += weight * input.p90_us;
    weighted_p99 += weight * input.p99_us;
    for (const auto& [bound, n] : input.buckets) buckets[bound] += n;
  }
  if (out.count == 0) return out;
  const double total = static_cast<double>(out.count);
  out.mean_us = weighted_mean / total;
  out.p50_us = weighted_p50 / total;
  out.p90_us = weighted_p90 / total;
  out.p99_us = weighted_p99 / total;
  out.buckets.assign(buckets.begin(), buckets.end());
  return out;
}

}  // namespace smartsock::util
