# Empty dependencies file for requirement_repl.
# This may be replaced when dependencies are built.
