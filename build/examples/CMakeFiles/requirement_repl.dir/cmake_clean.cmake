file(REMOVE_RECURSE
  "CMakeFiles/requirement_repl.dir/requirement_repl.cpp.o"
  "CMakeFiles/requirement_repl.dir/requirement_repl.cpp.o.d"
  "requirement_repl"
  "requirement_repl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/requirement_repl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
