file(REMOVE_RECURSE
  "CMakeFiles/fig1_4_scenario.dir/fig1_4_scenario.cpp.o"
  "CMakeFiles/fig1_4_scenario.dir/fig1_4_scenario.cpp.o.d"
  "fig1_4_scenario"
  "fig1_4_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_4_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
