# Empty dependencies file for fig1_4_scenario.
# This may be replaced when dependencies are built.
