# Empty compiler generated dependencies file for massive_download.
# This may be replaced when dependencies are built.
