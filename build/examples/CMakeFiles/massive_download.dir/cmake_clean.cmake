file(REMOVE_RECURSE
  "CMakeFiles/massive_download.dir/massive_download.cpp.o"
  "CMakeFiles/massive_download.dir/massive_download.cpp.o.d"
  "massive_download"
  "massive_download.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/massive_download.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
