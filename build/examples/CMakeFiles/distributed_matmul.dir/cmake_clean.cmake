file(REMOVE_RECURSE
  "CMakeFiles/distributed_matmul.dir/distributed_matmul.cpp.o"
  "CMakeFiles/distributed_matmul.dir/distributed_matmul.cpp.o.d"
  "distributed_matmul"
  "distributed_matmul.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_matmul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
