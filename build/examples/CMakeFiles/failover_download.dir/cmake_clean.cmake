file(REMOVE_RECURSE
  "CMakeFiles/failover_download.dir/failover_download.cpp.o"
  "CMakeFiles/failover_download.dir/failover_download.cpp.o.d"
  "failover_download"
  "failover_download.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failover_download.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
