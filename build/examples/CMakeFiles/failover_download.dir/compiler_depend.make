# Empty compiler generated dependencies file for failover_download.
# This may be replaced when dependencies are built.
