# Empty dependencies file for bench_tab5_3_matmul_2v2.
# This may be replaced when dependencies are built.
