# Empty dependencies file for bench_tab5_9_massd_3v3.
# This may be replaced when dependencies are built.
