# Empty compiler generated dependencies file for bench_tab5_4_matmul_4v4.
# This may be replaced when dependencies are built.
