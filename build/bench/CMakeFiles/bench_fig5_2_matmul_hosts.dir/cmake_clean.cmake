file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_2_matmul_hosts.dir/fig5_2_matmul_hosts.cpp.o"
  "CMakeFiles/bench_fig5_2_matmul_hosts.dir/fig5_2_matmul_hosts.cpp.o.d"
  "bench_fig5_2_matmul_hosts"
  "bench_fig5_2_matmul_hosts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_2_matmul_hosts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
