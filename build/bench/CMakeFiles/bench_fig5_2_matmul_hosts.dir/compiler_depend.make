# Empty compiler generated dependencies file for bench_fig5_2_matmul_hosts.
# This may be replaced when dependencies are built.
