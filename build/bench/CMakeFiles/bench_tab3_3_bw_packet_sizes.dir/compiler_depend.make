# Empty compiler generated dependencies file for bench_tab3_3_bw_packet_sizes.
# This may be replaced when dependencies are built.
