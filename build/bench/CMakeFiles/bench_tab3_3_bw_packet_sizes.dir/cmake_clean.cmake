file(REMOVE_RECURSE
  "CMakeFiles/bench_tab3_3_bw_packet_sizes.dir/tab3_3_bw_packet_sizes.cpp.o"
  "CMakeFiles/bench_tab3_3_bw_packet_sizes.dir/tab3_3_bw_packet_sizes.cpp.o.d"
  "bench_tab3_3_bw_packet_sizes"
  "bench_tab3_3_bw_packet_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab3_3_bw_packet_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
