# Empty compiler generated dependencies file for bench_tab5_2_resource_usage.
# This may be replaced when dependencies are built.
