
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_modes.cpp" "bench/CMakeFiles/bench_ablation_modes.dir/ablation_modes.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation_modes.dir/ablation_modes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/smartsock_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/smartsock_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/smartsock_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/smartsock_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/smartsock_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/smartsock_probe.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/smartsock_bwest.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/smartsock_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/smartsock_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/smartsock_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/smartsock_ipc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/smartsock_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
