file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_3_shaper_calibration.dir/fig5_3_shaper_calibration.cpp.o"
  "CMakeFiles/bench_fig5_3_shaper_calibration.dir/fig5_3_shaper_calibration.cpp.o.d"
  "bench_fig5_3_shaper_calibration"
  "bench_fig5_3_shaper_calibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_3_shaper_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
