# Empty compiler generated dependencies file for bench_fig5_3_shaper_calibration.
# This may be replaced when dependencies are built.
