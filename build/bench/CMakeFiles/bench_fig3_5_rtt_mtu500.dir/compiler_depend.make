# Empty compiler generated dependencies file for bench_fig3_5_rtt_mtu500.
# This may be replaced when dependencies are built.
