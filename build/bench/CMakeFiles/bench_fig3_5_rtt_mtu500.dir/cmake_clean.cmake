file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_5_rtt_mtu500.dir/fig3_rtt_curves.cpp.o"
  "CMakeFiles/bench_fig3_5_rtt_mtu500.dir/fig3_rtt_curves.cpp.o.d"
  "bench_fig3_5_rtt_mtu500"
  "bench_fig3_5_rtt_mtu500.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_5_rtt_mtu500.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
