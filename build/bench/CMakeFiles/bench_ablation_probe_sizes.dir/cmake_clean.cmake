file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_probe_sizes.dir/ablation_probe_sizes.cpp.o"
  "CMakeFiles/bench_ablation_probe_sizes.dir/ablation_probe_sizes.cpp.o.d"
  "bench_ablation_probe_sizes"
  "bench_ablation_probe_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_probe_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
