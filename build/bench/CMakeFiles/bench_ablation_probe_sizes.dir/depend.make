# Empty dependencies file for bench_ablation_probe_sizes.
# This may be replaced when dependencies are built.
