# Empty compiler generated dependencies file for bench_tab5_5_matmul_6v6.
# This may be replaced when dependencies are built.
