file(REMOVE_RECURSE
  "CMakeFiles/bench_tab5_5_matmul_6v6.dir/tab5_matmul.cpp.o"
  "CMakeFiles/bench_tab5_5_matmul_6v6.dir/tab5_matmul.cpp.o.d"
  "bench_tab5_5_matmul_6v6"
  "bench_tab5_5_matmul_6v6.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab5_5_matmul_6v6.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
