# Empty compiler generated dependencies file for bench_micro_language.
# This may be replaced when dependencies are built.
