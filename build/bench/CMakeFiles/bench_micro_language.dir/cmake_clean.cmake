file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_language.dir/micro_language.cpp.o"
  "CMakeFiles/bench_micro_language.dir/micro_language.cpp.o.d"
  "bench_micro_language"
  "bench_micro_language.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_language.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
