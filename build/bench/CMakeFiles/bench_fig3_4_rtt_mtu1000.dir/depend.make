# Empty dependencies file for bench_fig3_4_rtt_mtu1000.
# This may be replaced when dependencies are built.
