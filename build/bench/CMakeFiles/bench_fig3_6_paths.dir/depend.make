# Empty dependencies file for bench_fig3_6_paths.
# This may be replaced when dependencies are built.
