file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_6_paths.dir/fig3_6_paths.cpp.o"
  "CMakeFiles/bench_fig3_6_paths.dir/fig3_6_paths.cpp.o.d"
  "bench_fig3_6_paths"
  "bench_fig3_6_paths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_6_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
