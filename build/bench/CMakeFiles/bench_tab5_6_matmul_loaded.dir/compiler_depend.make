# Empty compiler generated dependencies file for bench_tab5_6_matmul_loaded.
# This may be replaced when dependencies are built.
