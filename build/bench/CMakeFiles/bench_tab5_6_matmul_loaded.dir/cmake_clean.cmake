file(REMOVE_RECURSE
  "CMakeFiles/bench_tab5_6_matmul_loaded.dir/tab5_matmul.cpp.o"
  "CMakeFiles/bench_tab5_6_matmul_loaded.dir/tab5_matmul.cpp.o.d"
  "bench_tab5_6_matmul_loaded"
  "bench_tab5_6_matmul_loaded.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab5_6_matmul_loaded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
