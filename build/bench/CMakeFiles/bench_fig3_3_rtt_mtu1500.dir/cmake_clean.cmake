file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_3_rtt_mtu1500.dir/fig3_rtt_curves.cpp.o"
  "CMakeFiles/bench_fig3_3_rtt_mtu1500.dir/fig3_rtt_curves.cpp.o.d"
  "bench_fig3_3_rtt_mtu1500"
  "bench_fig3_3_rtt_mtu1500.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_3_rtt_mtu1500.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
