# Empty compiler generated dependencies file for bench_fig3_3_rtt_mtu1500.
# This may be replaced when dependencies are built.
