file(REMOVE_RECURSE
  "CMakeFiles/bench_tab5_8_massd_2v2.dir/tab5_massd.cpp.o"
  "CMakeFiles/bench_tab5_8_massd_2v2.dir/tab5_massd.cpp.o.d"
  "bench_tab5_8_massd_2v2"
  "bench_tab5_8_massd_2v2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab5_8_massd_2v2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
