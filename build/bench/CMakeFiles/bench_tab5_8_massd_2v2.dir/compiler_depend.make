# Empty compiler generated dependencies file for bench_tab5_8_massd_2v2.
# This may be replaced when dependencies are built.
