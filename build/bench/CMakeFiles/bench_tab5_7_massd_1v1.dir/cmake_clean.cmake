file(REMOVE_RECURSE
  "CMakeFiles/bench_tab5_7_massd_1v1.dir/tab5_massd.cpp.o"
  "CMakeFiles/bench_tab5_7_massd_1v1.dir/tab5_massd.cpp.o.d"
  "bench_tab5_7_massd_1v1"
  "bench_tab5_7_massd_1v1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab5_7_massd_1v1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
