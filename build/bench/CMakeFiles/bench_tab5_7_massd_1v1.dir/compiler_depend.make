# Empty compiler generated dependencies file for bench_tab5_7_massd_1v1.
# This may be replaced when dependencies are built.
