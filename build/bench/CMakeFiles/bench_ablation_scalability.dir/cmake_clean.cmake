file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_scalability.dir/ablation_scalability.cpp.o"
  "CMakeFiles/bench_ablation_scalability.dir/ablation_scalability.cpp.o.d"
  "bench_ablation_scalability"
  "bench_ablation_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
