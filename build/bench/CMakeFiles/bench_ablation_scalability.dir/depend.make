# Empty dependencies file for bench_ablation_scalability.
# This may be replaced when dependencies are built.
