# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_lang_lexer[1]_include.cmake")
include("/root/repo/build/tests/test_lang_parser[1]_include.cmake")
include("/root/repo/build/tests/test_lang_eval[1]_include.cmake")
include("/root/repo/build/tests/test_lang_requirement[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_probe[1]_include.cmake")
include("/root/repo/build/tests/test_bwest[1]_include.cmake")
include("/root/repo/build/tests/test_ipc[1]_include.cmake")
include("/root/repo/build/tests/test_monitor[1]_include.cmake")
include("/root/repo/build/tests/test_transport[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_matmul[1]_include.cmake")
include("/root/repo/build/tests/test_massd[1]_include.cmake")
include("/root/repo/build/tests/test_harness[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_args[1]_include.cmake")
include("/root/repo/build/tests/test_tools[1]_include.cmake")
include("/root/repo/build/tests/test_failure[1]_include.cmake")
include("/root/repo/build/tests/test_lang_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_multigroup[1]_include.cmake")
