file(REMOVE_RECURSE
  "CMakeFiles/test_bwest.dir/bwest_test.cpp.o"
  "CMakeFiles/test_bwest.dir/bwest_test.cpp.o.d"
  "test_bwest"
  "test_bwest.pdb"
  "test_bwest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bwest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
