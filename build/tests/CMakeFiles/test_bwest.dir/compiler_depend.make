# Empty compiler generated dependencies file for test_bwest.
# This may be replaced when dependencies are built.
