file(REMOVE_RECURSE
  "CMakeFiles/test_lang_parser.dir/lang_parser_test.cpp.o"
  "CMakeFiles/test_lang_parser.dir/lang_parser_test.cpp.o.d"
  "test_lang_parser"
  "test_lang_parser.pdb"
  "test_lang_parser[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lang_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
