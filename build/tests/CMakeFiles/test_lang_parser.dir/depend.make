# Empty dependencies file for test_lang_parser.
# This may be replaced when dependencies are built.
