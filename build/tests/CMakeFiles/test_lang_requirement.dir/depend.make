# Empty dependencies file for test_lang_requirement.
# This may be replaced when dependencies are built.
