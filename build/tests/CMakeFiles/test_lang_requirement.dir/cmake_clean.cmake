file(REMOVE_RECURSE
  "CMakeFiles/test_lang_requirement.dir/lang_requirement_test.cpp.o"
  "CMakeFiles/test_lang_requirement.dir/lang_requirement_test.cpp.o.d"
  "test_lang_requirement"
  "test_lang_requirement.pdb"
  "test_lang_requirement[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lang_requirement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
