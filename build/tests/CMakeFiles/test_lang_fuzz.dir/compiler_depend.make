# Empty compiler generated dependencies file for test_lang_fuzz.
# This may be replaced when dependencies are built.
