file(REMOVE_RECURSE
  "CMakeFiles/test_lang_fuzz.dir/lang_fuzz_test.cpp.o"
  "CMakeFiles/test_lang_fuzz.dir/lang_fuzz_test.cpp.o.d"
  "test_lang_fuzz"
  "test_lang_fuzz.pdb"
  "test_lang_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lang_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
