file(REMOVE_RECURSE
  "CMakeFiles/test_lang_lexer.dir/lang_lexer_test.cpp.o"
  "CMakeFiles/test_lang_lexer.dir/lang_lexer_test.cpp.o.d"
  "test_lang_lexer"
  "test_lang_lexer.pdb"
  "test_lang_lexer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lang_lexer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
