# Empty compiler generated dependencies file for test_lang_lexer.
# This may be replaced when dependencies are built.
