file(REMOVE_RECURSE
  "CMakeFiles/test_massd.dir/massd_test.cpp.o"
  "CMakeFiles/test_massd.dir/massd_test.cpp.o.d"
  "test_massd"
  "test_massd.pdb"
  "test_massd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_massd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
