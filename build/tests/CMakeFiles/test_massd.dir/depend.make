# Empty dependencies file for test_massd.
# This may be replaced when dependencies are built.
