# Empty dependencies file for test_lang_eval.
# This may be replaced when dependencies are built.
