file(REMOVE_RECURSE
  "CMakeFiles/test_lang_eval.dir/lang_eval_test.cpp.o"
  "CMakeFiles/test_lang_eval.dir/lang_eval_test.cpp.o.d"
  "test_lang_eval"
  "test_lang_eval.pdb"
  "test_lang_eval[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lang_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
