# Empty compiler generated dependencies file for test_lang_eval.
# This may be replaced when dependencies are built.
