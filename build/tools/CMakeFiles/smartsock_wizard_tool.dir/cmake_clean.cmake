file(REMOVE_RECURSE
  "CMakeFiles/smartsock_wizard_tool.dir/smartsock_wizard.cpp.o"
  "CMakeFiles/smartsock_wizard_tool.dir/smartsock_wizard.cpp.o.d"
  "smartsock-wizard"
  "smartsock-wizard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smartsock_wizard_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
