# Empty dependencies file for smartsock_wizard_tool.
# This may be replaced when dependencies are built.
