# Empty dependencies file for smartsock_fileserver_tool.
# This may be replaced when dependencies are built.
