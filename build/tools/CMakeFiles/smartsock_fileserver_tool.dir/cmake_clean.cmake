file(REMOVE_RECURSE
  "CMakeFiles/smartsock_fileserver_tool.dir/smartsock_fileserver.cpp.o"
  "CMakeFiles/smartsock_fileserver_tool.dir/smartsock_fileserver.cpp.o.d"
  "smartsock-fileserver"
  "smartsock-fileserver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smartsock_fileserver_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
