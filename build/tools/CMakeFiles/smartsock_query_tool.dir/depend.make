# Empty dependencies file for smartsock_query_tool.
# This may be replaced when dependencies are built.
