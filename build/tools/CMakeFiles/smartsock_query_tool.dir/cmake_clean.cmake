file(REMOVE_RECURSE
  "CMakeFiles/smartsock_query_tool.dir/smartsock_query.cpp.o"
  "CMakeFiles/smartsock_query_tool.dir/smartsock_query.cpp.o.d"
  "smartsock-query"
  "smartsock-query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smartsock_query_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
