# Empty dependencies file for smartsock_matmul_tool.
# This may be replaced when dependencies are built.
