file(REMOVE_RECURSE
  "CMakeFiles/smartsock_matmul_tool.dir/smartsock_matmul.cpp.o"
  "CMakeFiles/smartsock_matmul_tool.dir/smartsock_matmul.cpp.o.d"
  "smartsock-matmul"
  "smartsock-matmul.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smartsock_matmul_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
