file(REMOVE_RECURSE
  "CMakeFiles/smartsock_echo_tool.dir/smartsock_echo.cpp.o"
  "CMakeFiles/smartsock_echo_tool.dir/smartsock_echo.cpp.o.d"
  "smartsock-echo"
  "smartsock-echo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smartsock_echo_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
