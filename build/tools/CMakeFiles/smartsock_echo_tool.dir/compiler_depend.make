# Empty compiler generated dependencies file for smartsock_echo_tool.
# This may be replaced when dependencies are built.
