# Empty compiler generated dependencies file for smartsock_massd_tool.
# This may be replaced when dependencies are built.
