file(REMOVE_RECURSE
  "CMakeFiles/smartsock_massd_tool.dir/smartsock_massd.cpp.o"
  "CMakeFiles/smartsock_massd_tool.dir/smartsock_massd.cpp.o.d"
  "smartsock-massd"
  "smartsock-massd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smartsock_massd_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
