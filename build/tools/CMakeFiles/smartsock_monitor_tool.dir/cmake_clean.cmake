file(REMOVE_RECURSE
  "CMakeFiles/smartsock_monitor_tool.dir/smartsock_monitor.cpp.o"
  "CMakeFiles/smartsock_monitor_tool.dir/smartsock_monitor.cpp.o.d"
  "smartsock-monitor"
  "smartsock-monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smartsock_monitor_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
