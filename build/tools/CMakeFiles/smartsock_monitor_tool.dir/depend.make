# Empty dependencies file for smartsock_monitor_tool.
# This may be replaced when dependencies are built.
