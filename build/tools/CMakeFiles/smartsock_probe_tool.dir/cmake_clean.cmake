file(REMOVE_RECURSE
  "CMakeFiles/smartsock_probe_tool.dir/smartsock_probe.cpp.o"
  "CMakeFiles/smartsock_probe_tool.dir/smartsock_probe.cpp.o.d"
  "smartsock-probe"
  "smartsock-probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smartsock_probe_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
