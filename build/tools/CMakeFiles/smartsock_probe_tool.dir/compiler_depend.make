# Empty compiler generated dependencies file for smartsock_probe_tool.
# This may be replaced when dependencies are built.
