file(REMOVE_RECURSE
  "CMakeFiles/smartsock_harness.dir/harness/cluster_harness.cpp.o"
  "CMakeFiles/smartsock_harness.dir/harness/cluster_harness.cpp.o.d"
  "CMakeFiles/smartsock_harness.dir/harness/experiment.cpp.o"
  "CMakeFiles/smartsock_harness.dir/harness/experiment.cpp.o.d"
  "CMakeFiles/smartsock_harness.dir/harness/selection.cpp.o"
  "CMakeFiles/smartsock_harness.dir/harness/selection.cpp.o.d"
  "libsmartsock_harness.a"
  "libsmartsock_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smartsock_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
