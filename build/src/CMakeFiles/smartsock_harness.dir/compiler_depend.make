# Empty compiler generated dependencies file for smartsock_harness.
# This may be replaced when dependencies are built.
