file(REMOVE_RECURSE
  "libsmartsock_harness.a"
)
