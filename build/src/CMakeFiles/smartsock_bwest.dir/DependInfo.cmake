
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bwest/estimate.cpp" "src/CMakeFiles/smartsock_bwest.dir/bwest/estimate.cpp.o" "gcc" "src/CMakeFiles/smartsock_bwest.dir/bwest/estimate.cpp.o.d"
  "/root/repo/src/bwest/one_way_udp_stream.cpp" "src/CMakeFiles/smartsock_bwest.dir/bwest/one_way_udp_stream.cpp.o" "gcc" "src/CMakeFiles/smartsock_bwest.dir/bwest/one_way_udp_stream.cpp.o.d"
  "/root/repo/src/bwest/packet_pair.cpp" "src/CMakeFiles/smartsock_bwest.dir/bwest/packet_pair.cpp.o" "gcc" "src/CMakeFiles/smartsock_bwest.dir/bwest/packet_pair.cpp.o.d"
  "/root/repo/src/bwest/slops.cpp" "src/CMakeFiles/smartsock_bwest.dir/bwest/slops.cpp.o" "gcc" "src/CMakeFiles/smartsock_bwest.dir/bwest/slops.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/smartsock_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/smartsock_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/smartsock_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
