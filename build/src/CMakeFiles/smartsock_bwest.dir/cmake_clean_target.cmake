file(REMOVE_RECURSE
  "libsmartsock_bwest.a"
)
