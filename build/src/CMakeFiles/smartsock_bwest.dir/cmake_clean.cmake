file(REMOVE_RECURSE
  "CMakeFiles/smartsock_bwest.dir/bwest/estimate.cpp.o"
  "CMakeFiles/smartsock_bwest.dir/bwest/estimate.cpp.o.d"
  "CMakeFiles/smartsock_bwest.dir/bwest/one_way_udp_stream.cpp.o"
  "CMakeFiles/smartsock_bwest.dir/bwest/one_way_udp_stream.cpp.o.d"
  "CMakeFiles/smartsock_bwest.dir/bwest/packet_pair.cpp.o"
  "CMakeFiles/smartsock_bwest.dir/bwest/packet_pair.cpp.o.d"
  "CMakeFiles/smartsock_bwest.dir/bwest/slops.cpp.o"
  "CMakeFiles/smartsock_bwest.dir/bwest/slops.cpp.o.d"
  "libsmartsock_bwest.a"
  "libsmartsock_bwest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smartsock_bwest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
