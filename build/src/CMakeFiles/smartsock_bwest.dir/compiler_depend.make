# Empty compiler generated dependencies file for smartsock_bwest.
# This may be replaced when dependencies are built.
