file(REMOVE_RECURSE
  "libsmartsock_monitor.a"
)
