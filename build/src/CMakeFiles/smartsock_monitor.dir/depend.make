# Empty dependencies file for smartsock_monitor.
# This may be replaced when dependencies are built.
