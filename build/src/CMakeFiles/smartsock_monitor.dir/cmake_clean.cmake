file(REMOVE_RECURSE
  "CMakeFiles/smartsock_monitor.dir/monitor/network_monitor.cpp.o"
  "CMakeFiles/smartsock_monitor.dir/monitor/network_monitor.cpp.o.d"
  "CMakeFiles/smartsock_monitor.dir/monitor/security_monitor.cpp.o"
  "CMakeFiles/smartsock_monitor.dir/monitor/security_monitor.cpp.o.d"
  "CMakeFiles/smartsock_monitor.dir/monitor/system_monitor.cpp.o"
  "CMakeFiles/smartsock_monitor.dir/monitor/system_monitor.cpp.o.d"
  "libsmartsock_monitor.a"
  "libsmartsock_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smartsock_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
