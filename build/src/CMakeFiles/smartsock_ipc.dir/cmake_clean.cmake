file(REMOVE_RECURSE
  "CMakeFiles/smartsock_ipc.dir/ipc/in_memory_store.cpp.o"
  "CMakeFiles/smartsock_ipc.dir/ipc/in_memory_store.cpp.o.d"
  "CMakeFiles/smartsock_ipc.dir/ipc/status_record.cpp.o"
  "CMakeFiles/smartsock_ipc.dir/ipc/status_record.cpp.o.d"
  "CMakeFiles/smartsock_ipc.dir/ipc/status_store.cpp.o"
  "CMakeFiles/smartsock_ipc.dir/ipc/status_store.cpp.o.d"
  "CMakeFiles/smartsock_ipc.dir/ipc/sysv_store.cpp.o"
  "CMakeFiles/smartsock_ipc.dir/ipc/sysv_store.cpp.o.d"
  "libsmartsock_ipc.a"
  "libsmartsock_ipc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smartsock_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
