file(REMOVE_RECURSE
  "libsmartsock_ipc.a"
)
