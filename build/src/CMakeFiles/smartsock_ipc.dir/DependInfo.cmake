
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ipc/in_memory_store.cpp" "src/CMakeFiles/smartsock_ipc.dir/ipc/in_memory_store.cpp.o" "gcc" "src/CMakeFiles/smartsock_ipc.dir/ipc/in_memory_store.cpp.o.d"
  "/root/repo/src/ipc/status_record.cpp" "src/CMakeFiles/smartsock_ipc.dir/ipc/status_record.cpp.o" "gcc" "src/CMakeFiles/smartsock_ipc.dir/ipc/status_record.cpp.o.d"
  "/root/repo/src/ipc/status_store.cpp" "src/CMakeFiles/smartsock_ipc.dir/ipc/status_store.cpp.o" "gcc" "src/CMakeFiles/smartsock_ipc.dir/ipc/status_store.cpp.o.d"
  "/root/repo/src/ipc/sysv_store.cpp" "src/CMakeFiles/smartsock_ipc.dir/ipc/sysv_store.cpp.o" "gcc" "src/CMakeFiles/smartsock_ipc.dir/ipc/sysv_store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/smartsock_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
