# Empty dependencies file for smartsock_ipc.
# This may be replaced when dependencies are built.
