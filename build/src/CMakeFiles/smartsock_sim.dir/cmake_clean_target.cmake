file(REMOVE_RECURSE
  "libsmartsock_sim.a"
)
