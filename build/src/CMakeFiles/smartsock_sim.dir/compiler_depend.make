# Empty compiler generated dependencies file for smartsock_sim.
# This may be replaced when dependencies are built.
