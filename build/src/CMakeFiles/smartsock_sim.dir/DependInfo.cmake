
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cross_traffic.cpp" "src/CMakeFiles/smartsock_sim.dir/sim/cross_traffic.cpp.o" "gcc" "src/CMakeFiles/smartsock_sim.dir/sim/cross_traffic.cpp.o.d"
  "/root/repo/src/sim/network_path.cpp" "src/CMakeFiles/smartsock_sim.dir/sim/network_path.cpp.o" "gcc" "src/CMakeFiles/smartsock_sim.dir/sim/network_path.cpp.o.d"
  "/root/repo/src/sim/sim_procfs.cpp" "src/CMakeFiles/smartsock_sim.dir/sim/sim_procfs.cpp.o" "gcc" "src/CMakeFiles/smartsock_sim.dir/sim/sim_procfs.cpp.o.d"
  "/root/repo/src/sim/testbed.cpp" "src/CMakeFiles/smartsock_sim.dir/sim/testbed.cpp.o" "gcc" "src/CMakeFiles/smartsock_sim.dir/sim/testbed.cpp.o.d"
  "/root/repo/src/sim/virtual_clock.cpp" "src/CMakeFiles/smartsock_sim.dir/sim/virtual_clock.cpp.o" "gcc" "src/CMakeFiles/smartsock_sim.dir/sim/virtual_clock.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/smartsock_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
