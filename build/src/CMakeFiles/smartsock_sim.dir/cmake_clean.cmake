file(REMOVE_RECURSE
  "CMakeFiles/smartsock_sim.dir/sim/cross_traffic.cpp.o"
  "CMakeFiles/smartsock_sim.dir/sim/cross_traffic.cpp.o.d"
  "CMakeFiles/smartsock_sim.dir/sim/network_path.cpp.o"
  "CMakeFiles/smartsock_sim.dir/sim/network_path.cpp.o.d"
  "CMakeFiles/smartsock_sim.dir/sim/sim_procfs.cpp.o"
  "CMakeFiles/smartsock_sim.dir/sim/sim_procfs.cpp.o.d"
  "CMakeFiles/smartsock_sim.dir/sim/testbed.cpp.o"
  "CMakeFiles/smartsock_sim.dir/sim/testbed.cpp.o.d"
  "CMakeFiles/smartsock_sim.dir/sim/virtual_clock.cpp.o"
  "CMakeFiles/smartsock_sim.dir/sim/virtual_clock.cpp.o.d"
  "libsmartsock_sim.a"
  "libsmartsock_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smartsock_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
