
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lang/ast.cpp" "src/CMakeFiles/smartsock_lang.dir/lang/ast.cpp.o" "gcc" "src/CMakeFiles/smartsock_lang.dir/lang/ast.cpp.o.d"
  "/root/repo/src/lang/builtins.cpp" "src/CMakeFiles/smartsock_lang.dir/lang/builtins.cpp.o" "gcc" "src/CMakeFiles/smartsock_lang.dir/lang/builtins.cpp.o.d"
  "/root/repo/src/lang/evaluator.cpp" "src/CMakeFiles/smartsock_lang.dir/lang/evaluator.cpp.o" "gcc" "src/CMakeFiles/smartsock_lang.dir/lang/evaluator.cpp.o.d"
  "/root/repo/src/lang/lexer.cpp" "src/CMakeFiles/smartsock_lang.dir/lang/lexer.cpp.o" "gcc" "src/CMakeFiles/smartsock_lang.dir/lang/lexer.cpp.o.d"
  "/root/repo/src/lang/parser.cpp" "src/CMakeFiles/smartsock_lang.dir/lang/parser.cpp.o" "gcc" "src/CMakeFiles/smartsock_lang.dir/lang/parser.cpp.o.d"
  "/root/repo/src/lang/requirement.cpp" "src/CMakeFiles/smartsock_lang.dir/lang/requirement.cpp.o" "gcc" "src/CMakeFiles/smartsock_lang.dir/lang/requirement.cpp.o.d"
  "/root/repo/src/lang/symtab.cpp" "src/CMakeFiles/smartsock_lang.dir/lang/symtab.cpp.o" "gcc" "src/CMakeFiles/smartsock_lang.dir/lang/symtab.cpp.o.d"
  "/root/repo/src/lang/token.cpp" "src/CMakeFiles/smartsock_lang.dir/lang/token.cpp.o" "gcc" "src/CMakeFiles/smartsock_lang.dir/lang/token.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/smartsock_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
