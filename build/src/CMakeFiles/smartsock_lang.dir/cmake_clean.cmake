file(REMOVE_RECURSE
  "CMakeFiles/smartsock_lang.dir/lang/ast.cpp.o"
  "CMakeFiles/smartsock_lang.dir/lang/ast.cpp.o.d"
  "CMakeFiles/smartsock_lang.dir/lang/builtins.cpp.o"
  "CMakeFiles/smartsock_lang.dir/lang/builtins.cpp.o.d"
  "CMakeFiles/smartsock_lang.dir/lang/evaluator.cpp.o"
  "CMakeFiles/smartsock_lang.dir/lang/evaluator.cpp.o.d"
  "CMakeFiles/smartsock_lang.dir/lang/lexer.cpp.o"
  "CMakeFiles/smartsock_lang.dir/lang/lexer.cpp.o.d"
  "CMakeFiles/smartsock_lang.dir/lang/parser.cpp.o"
  "CMakeFiles/smartsock_lang.dir/lang/parser.cpp.o.d"
  "CMakeFiles/smartsock_lang.dir/lang/requirement.cpp.o"
  "CMakeFiles/smartsock_lang.dir/lang/requirement.cpp.o.d"
  "CMakeFiles/smartsock_lang.dir/lang/symtab.cpp.o"
  "CMakeFiles/smartsock_lang.dir/lang/symtab.cpp.o.d"
  "CMakeFiles/smartsock_lang.dir/lang/token.cpp.o"
  "CMakeFiles/smartsock_lang.dir/lang/token.cpp.o.d"
  "libsmartsock_lang.a"
  "libsmartsock_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smartsock_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
