# Empty compiler generated dependencies file for smartsock_lang.
# This may be replaced when dependencies are built.
