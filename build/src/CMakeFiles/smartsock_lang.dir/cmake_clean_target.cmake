file(REMOVE_RECURSE
  "libsmartsock_lang.a"
)
