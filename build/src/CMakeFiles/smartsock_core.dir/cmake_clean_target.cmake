file(REMOVE_RECURSE
  "libsmartsock_core.a"
)
