file(REMOVE_RECURSE
  "CMakeFiles/smartsock_core.dir/core/server_matcher.cpp.o"
  "CMakeFiles/smartsock_core.dir/core/server_matcher.cpp.o.d"
  "CMakeFiles/smartsock_core.dir/core/smart_client.cpp.o"
  "CMakeFiles/smartsock_core.dir/core/smart_client.cpp.o.d"
  "CMakeFiles/smartsock_core.dir/core/wire.cpp.o"
  "CMakeFiles/smartsock_core.dir/core/wire.cpp.o.d"
  "CMakeFiles/smartsock_core.dir/core/wizard.cpp.o"
  "CMakeFiles/smartsock_core.dir/core/wizard.cpp.o.d"
  "libsmartsock_core.a"
  "libsmartsock_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smartsock_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
