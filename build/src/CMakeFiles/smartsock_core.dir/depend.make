# Empty dependencies file for smartsock_core.
# This may be replaced when dependencies are built.
