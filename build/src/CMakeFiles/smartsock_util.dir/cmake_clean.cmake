file(REMOVE_RECURSE
  "CMakeFiles/smartsock_util.dir/util/args.cpp.o"
  "CMakeFiles/smartsock_util.dir/util/args.cpp.o.d"
  "CMakeFiles/smartsock_util.dir/util/clock.cpp.o"
  "CMakeFiles/smartsock_util.dir/util/clock.cpp.o.d"
  "CMakeFiles/smartsock_util.dir/util/config.cpp.o"
  "CMakeFiles/smartsock_util.dir/util/config.cpp.o.d"
  "CMakeFiles/smartsock_util.dir/util/counters.cpp.o"
  "CMakeFiles/smartsock_util.dir/util/counters.cpp.o.d"
  "CMakeFiles/smartsock_util.dir/util/logging.cpp.o"
  "CMakeFiles/smartsock_util.dir/util/logging.cpp.o.d"
  "CMakeFiles/smartsock_util.dir/util/rng.cpp.o"
  "CMakeFiles/smartsock_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/smartsock_util.dir/util/strings.cpp.o"
  "CMakeFiles/smartsock_util.dir/util/strings.cpp.o.d"
  "libsmartsock_util.a"
  "libsmartsock_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smartsock_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
