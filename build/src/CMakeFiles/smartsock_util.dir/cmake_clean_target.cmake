file(REMOVE_RECURSE
  "libsmartsock_util.a"
)
