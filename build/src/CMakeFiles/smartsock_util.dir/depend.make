# Empty dependencies file for smartsock_util.
# This may be replaced when dependencies are built.
