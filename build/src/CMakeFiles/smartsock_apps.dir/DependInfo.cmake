
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/massd/downloader.cpp" "src/CMakeFiles/smartsock_apps.dir/apps/massd/downloader.cpp.o" "gcc" "src/CMakeFiles/smartsock_apps.dir/apps/massd/downloader.cpp.o.d"
  "/root/repo/src/apps/massd/file_server.cpp" "src/CMakeFiles/smartsock_apps.dir/apps/massd/file_server.cpp.o" "gcc" "src/CMakeFiles/smartsock_apps.dir/apps/massd/file_server.cpp.o.d"
  "/root/repo/src/apps/massd/shaper.cpp" "src/CMakeFiles/smartsock_apps.dir/apps/massd/shaper.cpp.o" "gcc" "src/CMakeFiles/smartsock_apps.dir/apps/massd/shaper.cpp.o.d"
  "/root/repo/src/apps/matmul/master.cpp" "src/CMakeFiles/smartsock_apps.dir/apps/matmul/master.cpp.o" "gcc" "src/CMakeFiles/smartsock_apps.dir/apps/matmul/master.cpp.o.d"
  "/root/repo/src/apps/matmul/matrix.cpp" "src/CMakeFiles/smartsock_apps.dir/apps/matmul/matrix.cpp.o" "gcc" "src/CMakeFiles/smartsock_apps.dir/apps/matmul/matrix.cpp.o.d"
  "/root/repo/src/apps/matmul/protocol.cpp" "src/CMakeFiles/smartsock_apps.dir/apps/matmul/protocol.cpp.o" "gcc" "src/CMakeFiles/smartsock_apps.dir/apps/matmul/protocol.cpp.o.d"
  "/root/repo/src/apps/matmul/serial.cpp" "src/CMakeFiles/smartsock_apps.dir/apps/matmul/serial.cpp.o" "gcc" "src/CMakeFiles/smartsock_apps.dir/apps/matmul/serial.cpp.o.d"
  "/root/repo/src/apps/matmul/worker.cpp" "src/CMakeFiles/smartsock_apps.dir/apps/matmul/worker.cpp.o" "gcc" "src/CMakeFiles/smartsock_apps.dir/apps/matmul/worker.cpp.o.d"
  "/root/repo/src/apps/workload/workload_generator.cpp" "src/CMakeFiles/smartsock_apps.dir/apps/workload/workload_generator.cpp.o" "gcc" "src/CMakeFiles/smartsock_apps.dir/apps/workload/workload_generator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/smartsock_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/smartsock_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/smartsock_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/smartsock_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/smartsock_probe.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/smartsock_bwest.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/smartsock_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/smartsock_ipc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/smartsock_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/smartsock_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
