file(REMOVE_RECURSE
  "libsmartsock_apps.a"
)
