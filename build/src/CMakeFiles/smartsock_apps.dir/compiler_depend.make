# Empty compiler generated dependencies file for smartsock_apps.
# This may be replaced when dependencies are built.
