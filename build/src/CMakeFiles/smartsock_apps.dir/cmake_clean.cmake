file(REMOVE_RECURSE
  "CMakeFiles/smartsock_apps.dir/apps/massd/downloader.cpp.o"
  "CMakeFiles/smartsock_apps.dir/apps/massd/downloader.cpp.o.d"
  "CMakeFiles/smartsock_apps.dir/apps/massd/file_server.cpp.o"
  "CMakeFiles/smartsock_apps.dir/apps/massd/file_server.cpp.o.d"
  "CMakeFiles/smartsock_apps.dir/apps/massd/shaper.cpp.o"
  "CMakeFiles/smartsock_apps.dir/apps/massd/shaper.cpp.o.d"
  "CMakeFiles/smartsock_apps.dir/apps/matmul/master.cpp.o"
  "CMakeFiles/smartsock_apps.dir/apps/matmul/master.cpp.o.d"
  "CMakeFiles/smartsock_apps.dir/apps/matmul/matrix.cpp.o"
  "CMakeFiles/smartsock_apps.dir/apps/matmul/matrix.cpp.o.d"
  "CMakeFiles/smartsock_apps.dir/apps/matmul/protocol.cpp.o"
  "CMakeFiles/smartsock_apps.dir/apps/matmul/protocol.cpp.o.d"
  "CMakeFiles/smartsock_apps.dir/apps/matmul/serial.cpp.o"
  "CMakeFiles/smartsock_apps.dir/apps/matmul/serial.cpp.o.d"
  "CMakeFiles/smartsock_apps.dir/apps/matmul/worker.cpp.o"
  "CMakeFiles/smartsock_apps.dir/apps/matmul/worker.cpp.o.d"
  "CMakeFiles/smartsock_apps.dir/apps/workload/workload_generator.cpp.o"
  "CMakeFiles/smartsock_apps.dir/apps/workload/workload_generator.cpp.o.d"
  "libsmartsock_apps.a"
  "libsmartsock_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smartsock_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
