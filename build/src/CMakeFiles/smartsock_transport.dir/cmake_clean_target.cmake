file(REMOVE_RECURSE
  "libsmartsock_transport.a"
)
