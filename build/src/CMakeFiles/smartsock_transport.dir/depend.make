# Empty dependencies file for smartsock_transport.
# This may be replaced when dependencies are built.
