
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transport/receiver.cpp" "src/CMakeFiles/smartsock_transport.dir/transport/receiver.cpp.o" "gcc" "src/CMakeFiles/smartsock_transport.dir/transport/receiver.cpp.o.d"
  "/root/repo/src/transport/record_codec.cpp" "src/CMakeFiles/smartsock_transport.dir/transport/record_codec.cpp.o" "gcc" "src/CMakeFiles/smartsock_transport.dir/transport/record_codec.cpp.o.d"
  "/root/repo/src/transport/transmitter.cpp" "src/CMakeFiles/smartsock_transport.dir/transport/transmitter.cpp.o" "gcc" "src/CMakeFiles/smartsock_transport.dir/transport/transmitter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/smartsock_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/smartsock_ipc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/smartsock_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
