file(REMOVE_RECURSE
  "CMakeFiles/smartsock_transport.dir/transport/receiver.cpp.o"
  "CMakeFiles/smartsock_transport.dir/transport/receiver.cpp.o.d"
  "CMakeFiles/smartsock_transport.dir/transport/record_codec.cpp.o"
  "CMakeFiles/smartsock_transport.dir/transport/record_codec.cpp.o.d"
  "CMakeFiles/smartsock_transport.dir/transport/transmitter.cpp.o"
  "CMakeFiles/smartsock_transport.dir/transport/transmitter.cpp.o.d"
  "libsmartsock_transport.a"
  "libsmartsock_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smartsock_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
