file(REMOVE_RECURSE
  "CMakeFiles/smartsock_probe.dir/probe/proc_reader.cpp.o"
  "CMakeFiles/smartsock_probe.dir/probe/proc_reader.cpp.o.d"
  "CMakeFiles/smartsock_probe.dir/probe/server_probe.cpp.o"
  "CMakeFiles/smartsock_probe.dir/probe/server_probe.cpp.o.d"
  "CMakeFiles/smartsock_probe.dir/probe/sim_proc_reader.cpp.o"
  "CMakeFiles/smartsock_probe.dir/probe/sim_proc_reader.cpp.o.d"
  "CMakeFiles/smartsock_probe.dir/probe/status_report.cpp.o"
  "CMakeFiles/smartsock_probe.dir/probe/status_report.cpp.o.d"
  "libsmartsock_probe.a"
  "libsmartsock_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smartsock_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
