file(REMOVE_RECURSE
  "libsmartsock_probe.a"
)
