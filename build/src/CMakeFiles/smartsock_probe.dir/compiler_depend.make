# Empty compiler generated dependencies file for smartsock_probe.
# This may be replaced when dependencies are built.
