
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/probe/proc_reader.cpp" "src/CMakeFiles/smartsock_probe.dir/probe/proc_reader.cpp.o" "gcc" "src/CMakeFiles/smartsock_probe.dir/probe/proc_reader.cpp.o.d"
  "/root/repo/src/probe/server_probe.cpp" "src/CMakeFiles/smartsock_probe.dir/probe/server_probe.cpp.o" "gcc" "src/CMakeFiles/smartsock_probe.dir/probe/server_probe.cpp.o.d"
  "/root/repo/src/probe/sim_proc_reader.cpp" "src/CMakeFiles/smartsock_probe.dir/probe/sim_proc_reader.cpp.o" "gcc" "src/CMakeFiles/smartsock_probe.dir/probe/sim_proc_reader.cpp.o.d"
  "/root/repo/src/probe/status_report.cpp" "src/CMakeFiles/smartsock_probe.dir/probe/status_report.cpp.o" "gcc" "src/CMakeFiles/smartsock_probe.dir/probe/status_report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/smartsock_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/smartsock_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/smartsock_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
