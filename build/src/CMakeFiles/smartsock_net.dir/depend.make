# Empty dependencies file for smartsock_net.
# This may be replaced when dependencies are built.
