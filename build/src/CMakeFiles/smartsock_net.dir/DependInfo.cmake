
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/endpoint.cpp" "src/CMakeFiles/smartsock_net.dir/net/endpoint.cpp.o" "gcc" "src/CMakeFiles/smartsock_net.dir/net/endpoint.cpp.o.d"
  "/root/repo/src/net/poller.cpp" "src/CMakeFiles/smartsock_net.dir/net/poller.cpp.o" "gcc" "src/CMakeFiles/smartsock_net.dir/net/poller.cpp.o.d"
  "/root/repo/src/net/socket.cpp" "src/CMakeFiles/smartsock_net.dir/net/socket.cpp.o" "gcc" "src/CMakeFiles/smartsock_net.dir/net/socket.cpp.o.d"
  "/root/repo/src/net/tcp_listener.cpp" "src/CMakeFiles/smartsock_net.dir/net/tcp_listener.cpp.o" "gcc" "src/CMakeFiles/smartsock_net.dir/net/tcp_listener.cpp.o.d"
  "/root/repo/src/net/tcp_socket.cpp" "src/CMakeFiles/smartsock_net.dir/net/tcp_socket.cpp.o" "gcc" "src/CMakeFiles/smartsock_net.dir/net/tcp_socket.cpp.o.d"
  "/root/repo/src/net/udp_socket.cpp" "src/CMakeFiles/smartsock_net.dir/net/udp_socket.cpp.o" "gcc" "src/CMakeFiles/smartsock_net.dir/net/udp_socket.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/smartsock_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
