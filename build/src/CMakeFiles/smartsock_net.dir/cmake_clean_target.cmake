file(REMOVE_RECURSE
  "libsmartsock_net.a"
)
