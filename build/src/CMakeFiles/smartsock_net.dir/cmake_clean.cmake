file(REMOVE_RECURSE
  "CMakeFiles/smartsock_net.dir/net/endpoint.cpp.o"
  "CMakeFiles/smartsock_net.dir/net/endpoint.cpp.o.d"
  "CMakeFiles/smartsock_net.dir/net/poller.cpp.o"
  "CMakeFiles/smartsock_net.dir/net/poller.cpp.o.d"
  "CMakeFiles/smartsock_net.dir/net/socket.cpp.o"
  "CMakeFiles/smartsock_net.dir/net/socket.cpp.o.d"
  "CMakeFiles/smartsock_net.dir/net/tcp_listener.cpp.o"
  "CMakeFiles/smartsock_net.dir/net/tcp_listener.cpp.o.d"
  "CMakeFiles/smartsock_net.dir/net/tcp_socket.cpp.o"
  "CMakeFiles/smartsock_net.dir/net/tcp_socket.cpp.o.d"
  "CMakeFiles/smartsock_net.dir/net/udp_socket.cpp.o"
  "CMakeFiles/smartsock_net.dir/net/udp_socket.cpp.o.d"
  "libsmartsock_net.a"
  "libsmartsock_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smartsock_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
