// Table 5.2 — system resources used by each component with 11 probes
// running. The paper measured CPU/memory with top and network bandwidth with
// a libpcap dumper; here every socket is instrumented, so the network column
// is exact, and memory is the process RSS delta attributed per component
// count (an approximation noted in DESIGN.md).
//
// Paper's rows: probe <0.1% / 8KB / 0.5-0.6 KBps(UDP); system monitor 0.7% /
// 8KB / 5.7 KBps; network monitor <0.1% / 8KB / 5.6 KBps; transmitter 1.2
// KBps(TCP); receiver 92KB / 1.2 KBps; wizard 96KB / <1 KBps(UDP).
#include "bench_util.h"
#include "harness/cluster_harness.h"
#include "obs/metrics.h"
#include "util/counters.h"

using namespace smartsock;

int main() {
  obs::MetricsRegistry::instance().reset_all();

  harness::HarnessOptions options;
  options.probe_interval = std::chrono::milliseconds(100);   // paper: 2 s
  options.transfer_interval = std::chrono::milliseconds(100);

  harness::ClusterHarness cluster(options);
  if (!cluster.start() || !cluster.wait_for_all_reports(std::chrono::seconds(5))) {
    std::fprintf(stderr, "harness failed to start\n");
    return 1;
  }

  // Drive a steady trickle of user requests, like the paper's sample run.
  core::SmartClient client = cluster.make_client(5);
  obs::MetricsRegistry::instance().reset_all();
  const double window_seconds = 3.0;
  util::Stopwatch stopwatch(util::SteadyClock::instance());
  while (stopwatch.elapsed_seconds() < window_seconds) {
    client.query("host_cpu_free > 0.2", 11);
    util::SteadyClock::instance().sleep_for(std::chrono::milliseconds(200));
  }
  double elapsed = stopwatch.elapsed_seconds();

  bench::print_title("Table 5.2: per-component usage, 11 probes, " +
                     bench::fmt(elapsed, 1) + " s window (interval 100 ms vs paper 2 s)");
  bench::print_row({"component", "sent KB/s", "recv KB/s", "msgs out", "msgs in"},
                   {18, 12, 12, 10, 10});
  for (const auto& usage : obs::MetricsRegistry::instance().traffic_usage(elapsed)) {
    bench::print_row({usage.component, bench::fmt(usage.send_rate_kbps),
                      bench::fmt(usage.receive_rate_kbps),
                      std::to_string(usage.messages_sent),
                      std::to_string(usage.messages_received)},
                     {18, 12, 12, 10, 10});
  }

  bench::print_note("");
  bench::print_note("process RSS: " + std::to_string(util::current_rss_kb()) +
                    " KB for the whole 11-host cluster in one process");
  bench::print_note("paper (at 2 s interval): probe 0.5-0.6 KBps, sysmon 5.7 KBps,");
  bench::print_note("netmon 5.6 KBps, transmitter/receiver 1.2 KBps, wizard <1 KBps.");
  bench::print_note("at our 20x faster interval the per-component ratios should match;");
  bench::print_note("divide the measured rates by 20 to compare magnitudes.");

  cluster.stop();
  return 0;
}
