// Table 3.3 / Figure 3.7 — bandwidth estimates for the seven probe-size
// groups, with the pipechar-style and pathload-style baselines.
//
// Paper's numbers (sagit→suna, truth ≈ 95 Mbps):
//   100~500: 20.01   500~1000: 18.39   100~1000: 18.33    (Speed_init bias)
//   2000~4000: 88.12  4000~6000: 81.54  2000~6000: 83.54  (fragment noise)
//   1600~2900: 92.86                                       (optimal pair)
//   pipechar: 95.346  pathload: 96.1~101.3
#include "bench_util.h"
#include "bwest/one_way_udp_stream.h"
#include "bwest/packet_pair.h"
#include "bwest/slops.h"
#include "sim/testbed.h"

using namespace smartsock;

int main() {
  sim::PathConfig config = sim::sagit_to_suna(1500);

  bench::print_title("Table 3.3: bandwidth estimates by probe packet size (truth " +
                     bench::fmt(config.available_bw_mbps(), 1) + " Mbps)");
  bench::print_row({"sizes(B)", "min Bw", "max Bw", "avg Bw", "paper avg"},
                   {14, 10, 10, 10, 10});

  struct Group {
    int s1, s2;
    double paper_avg;
  };
  const Group groups[] = {
      {100, 500, 20.01},  {500, 1000, 18.39},  {100, 1000, 18.33},
      {2000, 4000, 88.12}, {4000, 6000, 81.54}, {2000, 6000, 83.54},
      {1600, 2900, 92.86},
  };

  for (const Group& group : groups) {
    double min_bw = 1e18, max_bw = 0, sum = 0;
    const int runs = 10;
    int valid = 0;
    for (int run = 0; run < runs; ++run) {
      sim::NetworkPath path(config);
      path.reseed(1000 + static_cast<std::uint64_t>(run) * 7919 + group.s1);
      bwest::SimProber prober(path);
      bwest::OneWayStreamConfig stream;
      stream.size1_bytes = group.s1;
      stream.size2_bytes = group.s2;
      stream.probes_per_size = 40;
      auto estimate = bwest::OneWayUdpStreamEstimator(stream).estimate(prober);
      if (!estimate.valid()) continue;
      ++valid;
      min_bw = std::min(min_bw, estimate.bw_mbps);
      max_bw = std::max(max_bw, estimate.bw_mbps);
      sum += estimate.bw_mbps;
    }
    bench::print_row({std::to_string(group.s1) + "~" + std::to_string(group.s2),
                      valid ? bench::fmt(min_bw) : "-", valid ? bench::fmt(max_bw) : "-",
                      valid ? bench::fmt(sum / valid) : "-", bench::fmt(group.paper_avg)},
                     {14, 10, 10, 10, 10});
  }

  // Baselines (the comparison rows at the bottom of Table 3.3).
  sim::NetworkPath path(config);
  auto pipechar = bwest::PacketPairEstimator().estimate(path);
  auto pathload = bwest::SlopsEstimator().estimate(path);
  bench::print_row({"pipechar", "", "", bench::fmt(pipechar.bw_mbps), "95.35"},
                   {14, 10, 10, 10, 10});
  bench::print_row({"pathload", bench::fmt(pathload.bw_min_mbps),
                    bench::fmt(pathload.bw_max_mbps), bench::fmt(pathload.bw_mbps),
                    "96.1~101.3"},
                   {14, 10, 10, 10, 10});

  bench::print_note("");
  bench::print_note("shape check: sub-MTU groups ~4-5x low (Speed_init, Eq 3.7);");
  bench::print_note("1600~2900 (equal fragments, just above MTU) is the best group.");
  return 0;
}
