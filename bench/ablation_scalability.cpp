// Ablation — scalability with pool size (the thesis's objective: usable in
// "a small scale local computation environment and a large scale
// environment with numerous servers").
//
// Sweeps the server-pool size and reports: time for every probe's report to
// reach the wizard store (pipeline convergence), the wizard's query latency,
// and the probe/monitor traffic, all on one machine over loopback.
#include "bench_util.h"
#include "harness/cluster_harness.h"
#include "obs/metrics.h"
#include "util/counters.h"

using namespace smartsock;

namespace {

std::vector<sim::HostSpec> synthetic_pool(std::size_t n) {
  std::vector<sim::HostSpec> hosts;
  for (std::size_t i = 0; i < n; ++i) {
    sim::HostSpec spec;
    spec.name = "node" + std::to_string(i);
    spec.cpu_model = "P4 2.0GHz";
    spec.bogomips = 4000 + static_cast<double>(i);
    spec.ram_mb = 256;
    spec.segment = static_cast<int>(i % 6);
    spec.matmul_mflops = 40;
    hosts.push_back(spec);
  }
  return hosts;
}

}  // namespace

int main() {
  bench::print_title("Ablation: pool-size scalability (loopback, 100 ms intervals)");
  bench::print_row({"servers", "converge ms", "query ms", "probe KB/s", "reply servers"},
                   {10, 14, 12, 12, 14});

  for (std::size_t n : {4, 8, 16, 32, 64}) {
    harness::HarnessOptions options;
    options.hosts = synthetic_pool(n);
    options.probe_interval = std::chrono::milliseconds(100);
    options.transfer_interval = std::chrono::milliseconds(100);
    harness::ClusterHarness cluster(options);

    obs::MetricsRegistry::instance().reset_all();
    util::Stopwatch convergence(util::SteadyClock::instance());
    if (!cluster.start() || !cluster.wait_for_all_reports(std::chrono::seconds(15))) {
      bench::print_row({std::to_string(n), "DID NOT CONVERGE", "-", "-", "-"},
                       {10, 14, 12, 12, 14});
      continue;
    }
    double converge_ms = util::to_millis(convergence.elapsed());

    core::SmartClient client = cluster.make_client(3);
    double query_ms_total = 0;
    std::size_t reply_servers = 0;
    const int kQueries = 10;
    for (int q = 0; q < kQueries; ++q) {
      util::Stopwatch per_query(util::SteadyClock::instance());
      auto reply = client.query("host_cpu_free > 0.2", core::kMaxServersPerReply);
      query_ms_total += util::to_millis(per_query.elapsed());
      if (reply.ok) reply_servers = reply.servers.size();
    }

    double window = 1.5;
    obs::MetricsRegistry::instance().reset_all();
    util::SteadyClock::instance().sleep_for(util::from_seconds(window));
    double probe_kbps = 0;
    for (const auto& usage : obs::MetricsRegistry::instance().traffic_usage(window)) {
      if (usage.component == "system_probe") probe_kbps = usage.send_rate_kbps;
    }
    cluster.stop();

    bench::print_row({std::to_string(n), bench::fmt(converge_ms, 0),
                      bench::fmt(query_ms_total / kQueries, 2), bench::fmt(probe_kbps, 1),
                      std::to_string(reply_servers)},
                     {10, 14, 12, 12, 14});
  }

  bench::print_note("");
  bench::print_note("probe traffic grows linearly with the pool; query latency stays");
  bench::print_note("sub-millisecond (the wizard scans records sequentially, §3.6.1);");
  bench::print_note("replies cap at 60 servers — the thesis's UDP reply limit.");
  return 0;
}
