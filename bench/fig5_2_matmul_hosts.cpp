// Figure 5.2 — per-host matrix benchmark: 1500x1500, block 200, one host at
// a time. The paper's chart shows the P3-866 and P4-2.4 machines beating the
// P4 1.6-1.8 GHz boxes for this workload; the calibrated per-host matmul
// throughputs reproduce that ranking through the full distributed stack
// (master, wire protocol, worker cost model).
#include <algorithm>

#include "bench_util.h"
#include "harness/experiment.h"

using namespace smartsock;

int main() {
  // Smaller time scale than the comparison tables: 11 single-host runs of a
  // ~150-virtual-second benchmark each.
  harness::HarnessOptions options = harness::matmul_harness_options(/*time_scale=*/0.0015);
  harness::ClusterHarness cluster(options);
  if (!cluster.start() || !cluster.wait_for_all_reports(std::chrono::seconds(5))) {
    std::fprintf(stderr, "harness failed to start\n");
    return 1;
  }

  harness::MatmulExperiment experiment;
  experiment.n = 1500;
  experiment.block = 200;

  struct Row {
    std::string host;
    std::string cpu;
    double seconds;
  };
  std::vector<Row> rows;

  auto pool = cluster.all_servers();
  for (const sim::HostSpec& spec : sim::paper_hosts()) {
    auto cast = harness::pick_named(pool, {spec.name});
    auto row = harness::run_matmul(cluster, cast, experiment, spec.name);
    if (!row.ok) {
      std::fprintf(stderr, "%s: %s\n", spec.name.c_str(), row.error.c_str());
      continue;
    }
    rows.push_back({spec.name, spec.cpu_model, row.matmul_virtual_seconds});
  }
  cluster.stop();

  bench::print_title("Figure 5.2: matrix benchmark per host (1500x1500, blk=200)");
  bench::print_row({"host", "cpu", "time (virtual s)"}, {12, 12, 18});
  for (const Row& row : rows) {
    bench::print_row({row.host, row.cpu, bench::fmt(row.seconds, 1)}, {12, 12, 18});
  }

  // Shape check: best machines should be the P4-2.4 pair and the P3-866 pair.
  std::vector<Row> sorted = rows;
  std::sort(sorted.begin(), sorted.end(),
            [](const Row& a, const Row& b) { return a.seconds < b.seconds; });
  bench::print_note("");
  bench::print_note("fastest four: " + sorted[0].host + ", " + sorted[1].host + ", " +
                    sorted[2].host + ", " + sorted[3].host);
  bench::print_note("paper: P4-2.4 (dalmatian, dione) and P3-866 (sagit, lhost) lead,");
  bench::print_note("P4 1.6-1.8 GHz machines trail despite higher bogomips.");
  return 0;
}
