// Figure 5.3 — rshaper/massd calibration: 10 sample transfers with the
// shaper set to a random rate; achieved massd throughput must track the
// configured ceiling ("the maximum throughput that can be achieved by massd
// can be precisely controlled by rshaper").
//
// Paper parameters: (data, blk, bw) with bw = 1% of data per second. We keep
// that coupling at bench-friendly data sizes (throughput is a rate, so the
// comparison is size-independent).
#include "bench_util.h"
#include "apps/massd/downloader.h"
#include "apps/massd/file_server.h"
#include "util/rng.h"

using namespace smartsock;

int main() {
  util::Rng rng(20040615);

  bench::print_title("Figure 5.3: rshaper substitute vs massd throughput (10 samples)");
  bench::print_row({"sample", "data(KB)", "set bw (KB/s)", "measured (KB/s)", "ratio"},
                   {8, 10, 15, 17, 8});

  double worst_ratio = 1.0;
  for (int sample = 1; sample <= 10; ++sample) {
    // Paper: data 10000..100000 KB with bw = data/100; scale data 1/50 so
    // each transfer lasts ~0.4 s while keeping bw in the paper's range.
    double data_kb = rng.uniform(10000.0, 100000.0);
    double bw_kbps = data_kb / 100.0;
    double scaled_data_kb = data_kb / 50.0;

    apps::FileServerConfig config;
    config.rate_bytes_per_sec = bw_kbps * 1024.0;
    apps::FileServer server(config);
    if (!server.start()) return 1;

    apps::DownloadConfig download;
    download.total_bytes = static_cast<std::uint64_t>(scaled_data_kb * 1024.0);
    download.block_bytes = 100 * 1024;

    std::vector<net::TcpSocket> sockets;
    auto socket = net::TcpSocket::connect(server.endpoint(), std::chrono::seconds(1));
    if (!socket) return 1;
    sockets.push_back(std::move(*socket));
    auto result = apps::mass_download(download, std::move(sockets));
    server.stop();
    if (!result.ok) {
      std::fprintf(stderr, "sample %d failed: %s\n", sample, result.error.c_str());
      return 1;
    }
    double ratio = result.throughput_kbps() / bw_kbps;
    worst_ratio = std::min(worst_ratio, std::min(ratio, 2.0 - ratio));
    bench::print_row({std::to_string(sample), bench::fmt(scaled_data_kb, 0),
                      bench::fmt(bw_kbps, 1), bench::fmt(result.throughput_kbps(), 1),
                      bench::fmt(ratio, 3)},
                     {8, 10, 15, 17, 8});
  }

  bench::print_note("");
  bench::print_note("paper: set bandwidth ~= achieved throughput across all samples;");
  bench::print_note("worst-case agreement here: " + bench::fmt(worst_ratio * 100.0, 1) + "%");
  return 0;
}
