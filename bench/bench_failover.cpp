// Wizard replica-set failover benchmark (ISSUE 8) — measures what the
// client-side failover costs when a replica dies under load.
//
// One 3-replica cluster harness, one SmartClient driving a sequential query
// storm. Three measured windows:
//   * steady    — all 3 replicas alive;
//   * kill      — the primary is torn down abruptly at the window's start,
//                 so this window pays the failover (detection + retry);
//   * recovered — the selector has settled on a survivor.
//
// Reported per window: QPS, query latency p50/p99, error count. The headline
// numbers are the kill window's error rate (the zero-loss claim) and its QPS
// dip relative to steady state.
//
// Emits BENCH_failover.json for the CI artifact trail. Flags:
//   --smoke       short windows for CI
//   --self-check  exit nonzero if any query in any window failed (the
//                 failover window's error rate must be exactly zero)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/smart_client.h"
#include "harness/cluster_harness.h"
#include "obs/metrics.h"
#include "sim/testbed.h"

namespace {

using namespace smartsock;
using namespace std::chrono_literals;

const char* kRequirement = "host_cpu_free > 0.1\n";

struct WindowResult {
  std::string name;
  std::size_t queries = 0;
  std::size_t errors = 0;
  std::size_t stale = 0;
  double seconds = 0;
  double p50_ms = 0;
  double p99_ms = 0;

  double qps() const { return seconds > 0 ? static_cast<double>(queries) / seconds : 0; }
};

/// Drives the query storm for `budget` seconds and collects per-query
/// latency. Every query is counted; a reply with ok == false is an error —
/// the failover machinery is supposed to absorb replica death invisibly.
WindowResult run_window(const std::string& name, core::SmartClient& client,
                        double budget_seconds) {
  WindowResult window;
  window.name = name;
  std::vector<double> latencies_ms;
  auto start = std::chrono::steady_clock::now();
  double elapsed = 0;
  while (elapsed < budget_seconds || window.queries < 5) {
    auto t0 = std::chrono::steady_clock::now();
    core::WizardReply reply = client.query(kRequirement, 2);
    auto t1 = std::chrono::steady_clock::now();
    latencies_ms.push_back(std::chrono::duration<double, std::milli>(t1 - t0).count());
    ++window.queries;
    if (!reply.ok) {
      ++window.errors;
      std::fprintf(stderr, "[%s] query %zu failed: %s\n", name.c_str(), window.queries,
                   reply.error.c_str());
    } else if (reply.stale) {
      ++window.stale;
    }
    elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
                  .count();
  }
  window.seconds = elapsed;
  std::sort(latencies_ms.begin(), latencies_ms.end());
  window.p50_ms = latencies_ms[latencies_ms.size() / 2];
  window.p99_ms = latencies_ms[std::min(
      latencies_ms.size() - 1, static_cast<std::size_t>(latencies_ms.size() * 0.99))];
  return window;
}

void print_window(const WindowResult& w) {
  smartsock::bench::print_row(
      {w.name, smartsock::bench::fmt(w.qps(), 0), smartsock::bench::fmt(w.p50_ms),
       smartsock::bench::fmt(w.p99_ms), std::to_string(w.errors),
       std::to_string(w.stale), std::to_string(w.queries)},
      {11, 8, 10, 10, 8, 7, 9});
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool self_check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--self-check") == 0) self_check = true;
  }

  const double steady_s = smoke ? 1.0 : 4.0;
  const double kill_s = smoke ? 1.5 : 4.0;
  const double recovered_s = smoke ? 1.0 : 4.0;

  harness::HarnessOptions options;
  options.hosts = {*sim::find_paper_host("dalmatian"), *sim::find_paper_host("telesto"),
                   *sim::find_paper_host("sagit")};
  options.wizard_replicas = 3;
  harness::ClusterHarness cluster(options);
  if (!cluster.start()) {
    std::fprintf(stderr, "cannot start 3-replica cluster harness\n");
    return 1;
  }
  if (!cluster.wait_for_all_reports(std::chrono::seconds(10))) {
    std::fprintf(stderr, "hosts never reported\n");
    return 1;
  }

  core::SmartClientConfig config;
  config.wizard = cluster.wizard_endpoint(0);
  config.cluster = cluster.wizard_cluster();
  config.seed = 1234;
  config.reply_timeout = 300ms;
  config.retries = 3;
  config.retry.initial_backoff = 20ms;
  core::SmartClient client(config);

  smartsock::bench::print_title(
      "wizard replica-set failover: 3 replicas, primary killed under load");
  smartsock::bench::print_row(
      {"window", "qps", "p50 ms", "p99 ms", "errors", "stale", "queries"},
      {11, 8, 10, 10, 8, 7, 9});

  WindowResult steady = run_window("steady", client, steady_s);
  print_window(steady);

  // The kill lands at the start of this window, so its numbers include the
  // full failover: the timed-out attempt against the dead primary, the
  // retry, and the selector demoting it for subsequent queries. Kill the
  // replica the client is actually using — the selector may have settled on
  // a secondary if the first (cold) query to the preferred endpoint was
  // slow, and killing an idle replica would measure nothing.
  std::size_t primary = client.selector().select();
  if (!cluster.kill_wizard_replica(primary)) {
    std::fprintf(stderr, "cannot kill primary replica %zu\n", primary);
    return 1;
  }
  WindowResult kill = run_window("kill", client, kill_s);
  print_window(kill);

  WindowResult recovered = run_window("recovered", client, recovered_s);
  print_window(recovered);

  double qps_retained = steady.qps() > 0 ? kill.qps() / steady.qps() : 0;
  smartsock::bench::print_note(
      "failovers: " + std::to_string(client.failovers()) +
      "; kill-window QPS retained: " + smartsock::bench::fmt(qps_retained * 100, 1) +
      "% of steady state");

  std::FILE* json = std::fopen("BENCH_failover.json", "w");
  if (!json) {
    std::fprintf(stderr, "cannot write BENCH_failover.json\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"bench\": \"failover\",\n  \"replicas\": 3,\n");
  std::fprintf(json, "  \"smoke\": %s,\n  \"windows\": [\n", smoke ? "true" : "false");
  const WindowResult* windows[] = {&steady, &kill, &recovered};
  for (std::size_t i = 0; i < 3; ++i) {
    const WindowResult& w = *windows[i];
    std::fprintf(json,
                 "    {\"window\": \"%s\", \"qps\": %.1f, \"p50_ms\": %.3f, "
                 "\"p99_ms\": %.3f, \"errors\": %zu, \"stale\": %zu, "
                 "\"queries\": %zu}%s\n",
                 w.name.c_str(), w.qps(), w.p50_ms, w.p99_ms, w.errors, w.stale,
                 w.queries, i + 1 < 3 ? "," : "");
  }
  std::fprintf(json, "  ],\n");
  std::fprintf(json, "  \"failovers\": %llu,\n",
               static_cast<unsigned long long>(client.failovers()));
  std::fprintf(json, "  \"kill_window_qps_retained\": %.3f,\n", qps_retained);
  std::fprintf(json, "  \"metrics\": %s\n",
               obs::MetricsRegistry::instance().snapshot().to_json().c_str());
  std::fprintf(json, "}\n");
  std::fclose(json);
  std::printf("\nwrote BENCH_failover.json\n");

  cluster.stop();

  if (self_check) {
    // The zero-loss gate: killing one of three replicas must not fail a
    // single query in any window — the failover absorbs it entirely.
    std::size_t total_errors = steady.errors + kill.errors + recovered.errors;
    if (total_errors != 0) {
      std::fprintf(stderr, "SELF-CHECK FAILED: %zu failed queries (%zu in the kill window)\n",
                   total_errors, kill.errors);
      return 1;
    }
    if (client.failovers() == 0) {
      std::fprintf(stderr, "SELF-CHECK FAILED: the kill never forced a failover\n");
      return 1;
    }
    std::printf("self-check ok: 0 failed queries across %zu, %llu failovers\n",
                steady.queries + kill.queries + recovered.queries,
                static_cast<unsigned long long>(client.failovers()));
  }
  return 0;
}
