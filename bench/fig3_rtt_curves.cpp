// Figures 3.3 / 3.4 / 3.5 — RTT vs UDP payload size on the sagit→suna path
// with MTU 1500 / 1000 / 500. One binary per figure (SMARTSOCK_BENCH_MTU).
//
// The paper's finding: the RTT-over-size slope breaks at the interface MTU,
// because the first frame pays the interface-initialization stage
// (Speed_init ≈ 25 Mbps). The series below prints the measured (noisy) RTT
// and the deterministic model curve; the fitted slopes on either side of the
// MTU quantify the break.
#include "bench_util.h"
#include "sim/testbed.h"

#ifndef SMARTSOCK_BENCH_MTU
#define SMARTSOCK_BENCH_MTU 1500
#endif
#ifndef SMARTSOCK_BENCH_FIG
#define SMARTSOCK_BENCH_FIG 33
#endif

using namespace smartsock;

int main() {
  const int mtu = SMARTSOCK_BENCH_MTU;
  sim::NetworkPath path(sim::sagit_to_suna(mtu));

  bench::print_title("Figure 3." + std::to_string(SMARTSOCK_BENCH_FIG % 10) +
                     ": RTT vs UDP payload, sagit->suna, MTU=" + std::to_string(mtu));
  bench::print_row({"size(B)", "rtt_ms(measured)", "rtt_ms(model)", "fragments"},
                   {10, 18, 16, 10});

  // The thesis sweeps 1..6000 bytes step 10; print a step-60 summary series
  // (the full resolution drives the slope fits below).
  double sum_below_x = 0, sum_below_y = 0, sum_below_xx = 0, sum_below_xy = 0;
  int n_below = 0;
  double sum_above_x = 0, sum_above_y = 0, sum_above_xx = 0, sum_above_xy = 0;
  int n_above = 0;

  for (int size = 10; size <= 6000; size += 10) {
    double measured = path.probe_rtt_ms(size);
    double model = path.deterministic_rtt_ms(size);
    if (size % 300 == 0 || size == 10) {
      bench::print_row({std::to_string(size), bench::fmt(measured, 4),
                        bench::fmt(model, 4),
                        std::to_string(path.fragments_for_payload(size))},
                       {10, 18, 16, 10});
    }
    double x = size;
    if (size < mtu - 40) {
      sum_below_x += x;
      sum_below_y += measured;
      sum_below_xx += x * x;
      sum_below_xy += x * measured;
      ++n_below;
    } else if (size > mtu + 40) {
      sum_above_x += x;
      sum_above_y += measured;
      sum_above_xx += x * x;
      sum_above_xy += x * measured;
      ++n_above;
    }
  }

  auto fit_slope = [](double sx, double sy, double sxx, double sxy, int n) {
    return (n * sxy - sx * sy) / (n * sxx - sx * sx);
  };
  double slope_below =
      fit_slope(sum_below_x, sum_below_y, sum_below_xx, sum_below_xy, n_below) * 1000.0;
  double slope_above =
      fit_slope(sum_above_x, sum_above_y, sum_above_xx, sum_above_xy, n_above) * 1000.0;

  bench::print_note("");
  bench::print_note("slope below MTU: " + bench::fmt(slope_below, 4) +
                    " us/byte   (model: 8/B + 8/Speed_init = " +
                    bench::fmt(8.0 / path.available_bw_mbps() + 8.0 / 25.0, 4) + ")");
  bench::print_note("slope above MTU: " + bench::fmt(slope_above, 4) +
                    " us/byte   (model: 8/B = " +
                    bench::fmt(8.0 / path.available_bw_mbps(), 4) + ")");
  bench::print_note("slope ratio: " + bench::fmt(slope_below / slope_above, 2) +
                    "x  — paper: clear threshold at the MTU (Figs 3.3-3.5)");
  return 0;
}
