// Tables 5.3-5.6 — distributed matrix multiplication, random vs smart
// selection. One binary per table via SMARTSOCK_BENCH_TABLE.
//
// The "random" casts are the paper's reported Server List rows (pinning the
// baseline to the very comparison the paper printed); the smart cast is the
// wizard's live answer to the paper's requirement string, resolved through
// the full probe→monitor→transmitter→receiver→wizard pipeline.
#include "bench_util.h"
#include "harness/experiment.h"

#ifndef SMARTSOCK_BENCH_TABLE
#define SMARTSOCK_BENCH_TABLE 53
#endif

using namespace smartsock;
using harness::ExperimentRow;

namespace {

struct TableSpec {
  const char* title;
  std::size_t servers;
  std::size_t block;
  const char* requirement;
  std::vector<std::string> random_cast;
  double paper_random_seconds;
  double paper_smart_seconds;
  bool superpi_load;  // Table 5.6 loads helene/telesto/mimas
  std::vector<std::string> pool;  // empty = all 11 hosts
};

TableSpec spec_for(int table) {
  switch (table) {
    case 53:
      return {"Table 5.3: 2 vs 2 under zero workload (1500x1500, blk=600)",
              2,
              600,
              "(host_cpu_bogomips > 4000) && (host_cpu_free > 0.9) && "
              "(host_memory_free > 5)",
              {"lhost", "phoebe"},
              100.16,
              63.00,
              false,
              {}};
    case 54:
      return {"Table 5.4: 4 vs 4 under zero workload (1500x1500, blk=200)",
              4,
              200,
              "((host_cpu_bogomips > 4000) || (host_cpu_bogomips < 2000)) && "
              "(host_cpu_free > 0.9) && (host_memory_free > 5)",
              {"phoebe", "pandora-x", "calypso", "telesto"},
              62.61,
              49.95,
              false,
              {}};
    case 55:
      return {"Table 5.5: 6 vs 6 with blacklist (1500x1500, blk=200)",
              6,
              200,
              "(host_cpu_free > 0.9) && (host_memory_free > 5) && "
              "(user_denied_host1 = telesto) && (user_denied_host2 = mimas) && "
              "(user_denied_host3 = phoebe) && (user_denied_host4 = calypso) && "
              "(user_denied_host5 = titan-x)",
              {"phoebe", "pandora-x", "calypso", "telesto", "helene", "lhost"},
              46.90,
              43.02,
              false,
              {}};
    default:
      return {"Table 5.6: 4 vs 4 with Super_PI workload (1500x1500, blk=200)",
              4,
              200,
              "(host_cpu_free > 0.9) && (host_memory_free > 5) && "
              "(host_system_load1 < 0.5)",
              {"mimas", "helene", "calypso", "telesto"},
              90.93,
              66.72,
              true,
              {"telesto", "mimas", "helene", "phoebe", "calypso", "titan-x",
               "pandora-x"}};
  }
}

void print_result(const char* label, const ExperimentRow& row, double paper_seconds) {
  bench::print_row({label, row.servers_joined(),
                    row.ok ? bench::fmt(row.matmul_virtual_seconds, 2) : row.error,
                    bench::fmt(paper_seconds, 2)},
                   {10, 44, 14, 12});
}

}  // namespace

int main() {
  TableSpec spec = spec_for(SMARTSOCK_BENCH_TABLE);

  harness::HarnessOptions options = harness::matmul_harness_options(/*time_scale=*/0.004);
  if (!spec.pool.empty()) {
    options.hosts.clear();
    for (const std::string& name : spec.pool) {
      options.hosts.push_back(*sim::find_paper_host(name));
    }
  }
  harness::ClusterHarness cluster(options);
  if (!cluster.start() || !cluster.wait_for_all_reports(std::chrono::seconds(5))) {
    std::fprintf(stderr, "harness failed to start\n");
    return 1;
  }

  if (spec.superpi_load) {
    for (const char* host : {"helene", "telesto", "mimas"}) {
      cluster.set_workload(host, apps::WorkloadKind::kSuperPi);
    }
    cluster.refresh_now();
  }

  harness::MatmulExperiment experiment;
  experiment.n = 1500;
  experiment.block = spec.block;

  auto pool = cluster.all_servers();
  auto random_cast = harness::pick_named(pool, spec.random_cast);
  std::string error;
  auto smart_cast = harness::smart_selection(cluster, spec.requirement, spec.servers, &error);

  bench::print_title(spec.title);
  bench::print_row({"library", "server list", "time (v-s)", "paper (s)"}, {10, 44, 14, 12});

  ExperimentRow random_row = harness::run_matmul(cluster, random_cast, experiment, "random");
  print_result("random", random_row, spec.paper_random_seconds);

  ExperimentRow smart_row = harness::run_matmul(cluster, smart_cast, experiment, "smart");
  if (smart_cast.empty()) smart_row.error = "wizard: " + error;
  print_result("smart", smart_row, spec.paper_smart_seconds);

  if (random_row.ok && smart_row.ok && random_row.matmul_virtual_seconds > 0) {
    double improvement = 100.0 * (random_row.matmul_virtual_seconds -
                                  smart_row.matmul_virtual_seconds) /
                         random_row.matmul_virtual_seconds;
    double paper_improvement =
        100.0 * (spec.paper_random_seconds - spec.paper_smart_seconds) /
        spec.paper_random_seconds;
    bench::print_note("");
    bench::print_note("improvement: " + bench::fmt(improvement, 1) + "%  (paper: " +
                      bench::fmt(paper_improvement, 1) + "%)");
  }
  cluster.stop();
  return (random_row.ok && smart_row.ok) ? 0 : 1;
}
