// Figure 3.6 / Table 3.2 — RTT curves for the six sample network paths.
//
// Paper's observations reproduced here:
//  1. the threshold exists only on physical interfaces (path f, loopback,
//     shows none),
//  2. the threshold sits at the MTU,
//  3. the slope drops past the MTU,
//  4. large base RTT / high jitter (paths a, b) shadow the threshold.
#include "bench_util.h"
#include "sim/testbed.h"

using namespace smartsock;

int main() {
  bench::print_title("Table 3.2 / Figure 3.6: six sample network paths");
  bench::print_row({"path", "description", "ping RTT(ms)", "threshold?"}, {6, 42, 14, 12});

  for (const sim::SamplePath& sample : sim::sample_paths()) {
    sim::NetworkPath path(sample.config);

    // Detect the slope break through the measurement noise: fit both sides.
    auto mean_slope = [&](int s0, int s1) {
      double t0 = 0, t1 = 0;
      const int reps = 30;
      for (int i = 0; i < reps; ++i) {
        t0 += path.probe_rtt_ms(s0);
        t1 += path.probe_rtt_ms(s1);
      }
      return (t1 - t0) / reps / (s1 - s0);
    };
    double below = mean_slope(200, 1300);
    double above = mean_slope(1700, 5800);
    bool threshold_visible = below > 1.8 * above && above > 0;

    const char* verdict;
    if (!sample.config.has_init_stage) {
      verdict = "absent";  // observation 1: no init stage on virtual ifaces
    } else {
      verdict = threshold_visible ? "visible" : "shadowed";
    }
    bench::print_row({std::string(1, sample.index), sample.description,
                      bench::fmt(sample.config.base_rtt_ms, 3), verdict},
                     {6, 42, 14, 12});
  }

  bench::print_note("");
  bench::print_note("paper: threshold visible on clean sub-ms paths (c,d,e), absent on");
  bench::print_note("loopback (f), shadowed by base RTT/jitter on WAN paths (a,b)");

  // Also dump one representative curve per class for plotting.
  bench::print_title("representative curves (size, rtt_ms) — paths e and f");
  sim::NetworkPath lan(sim::sample_paths()[4].config);
  sim::NetworkPath loop(sim::sample_paths()[5].config);
  bench::print_row({"size(B)", "path e (switch)", "path f (loopback)"}, {10, 17, 18});
  for (int size = 200; size <= 6000; size += 400) {
    bench::print_row({std::to_string(size), bench::fmt(lan.probe_rtt_ms(size), 4),
                      bench::fmt(loop.probe_rtt_ms(size), 4)},
                     {10, 17, 18});
  }
  return 0;
}
