// Ablation — centralized push vs distributed pull (§3.5.1's trade-off).
//
// Centralized mode spends transmitter bandwidth continuously but answers
// user requests from warm state; distributed mode is quiet between requests
// but pays a pull round trip per request. This bench measures both sides of
// that trade with the same 11-host cluster.
#include "bench_util.h"
#include "harness/cluster_harness.h"
#include "obs/metrics.h"
#include "util/counters.h"

using namespace smartsock;

namespace {

struct ModeResult {
  double transmitter_kbps = 0.0;
  double mean_query_ms = 0.0;
  int queries = 0;
};

ModeResult run_mode(transport::TransferMode mode) {
  harness::HarnessOptions options;
  options.mode = mode;
  options.probe_interval = std::chrono::milliseconds(100);
  options.transfer_interval = std::chrono::milliseconds(100);
  harness::ClusterHarness cluster(options);
  ModeResult result;
  if (!cluster.start() || !cluster.wait_for_all_reports(std::chrono::seconds(5))) {
    return result;
  }
  obs::MetricsRegistry::instance().reset_all();

  core::SmartClient client = cluster.make_client(3);
  util::Stopwatch window(util::SteadyClock::instance());
  double query_ms_total = 0;
  const int kQueries = 12;
  for (int i = 0; i < kQueries; ++i) {
    util::Stopwatch per_query(util::SteadyClock::instance());
    auto reply = client.query("host_cpu_free > 0.2", 11);
    query_ms_total += util::to_millis(per_query.elapsed());
    if (!reply.ok) return result;
    util::SteadyClock::instance().sleep_for(std::chrono::milliseconds(150));
  }
  double elapsed = window.elapsed_seconds();

  for (const auto& usage : obs::MetricsRegistry::instance().traffic_usage(elapsed)) {
    if (usage.component == "transmitter") result.transmitter_kbps = usage.send_rate_kbps;
  }
  result.mean_query_ms = query_ms_total / kQueries;
  result.queries = kQueries;
  cluster.stop();
  return result;
}

}  // namespace

int main() {
  bench::print_title("Ablation: centralized push vs distributed pull (11 hosts)");
  bench::print_row({"mode", "transmitter KB/s", "mean query ms"}, {14, 18, 16});

  ModeResult centralized = run_mode(transport::TransferMode::kCentralized);
  bench::print_row({"centralized", bench::fmt(centralized.transmitter_kbps),
                    bench::fmt(centralized.mean_query_ms)},
                   {14, 18, 16});

  ModeResult distributed = run_mode(transport::TransferMode::kDistributed);
  bench::print_row({"distributed", bench::fmt(distributed.transmitter_kbps),
                    bench::fmt(distributed.mean_query_ms)},
                   {14, 18, 16});

  bench::print_note("");
  bench::print_note("expected: centralized burns steady transmitter bandwidth with fast");
  bench::print_note("queries; distributed is near-silent between requests but each query");
  bench::print_note("pays the pull round trip (§3.5.1).");
  return (centralized.queries && distributed.queries) ? 0 : 1;
}
