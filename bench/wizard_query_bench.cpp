// Wizard query fast-path benchmark — the start of the repo's perf
// trajectory toward the ROADMAP's "heavy traffic" north star.
//
// Measures end-to-end Wizard::handle() throughput and latency at 1 / 100 /
// 10k synthetic server records, comparing
//   * cold path: cache_size = 0, serial matcher — the seed behavior, every
//     request re-lexes, re-parses and re-evaluates against every record;
//   * warm path: requirement + reply caches on, matcher parallelized across
//     the hardware threads — repeated queries over an unchanged store hit
//     the store-version-validated reply cache (the MDS2 lever).
//
// Emits BENCH_wizard.json next to the binary's working directory so CI can
// archive the trajectory. Percentiles are exact (computed from the full
// per-query sample vector); each phase also feeds the same samples through
// a util::QuantileSketch (the P² estimator behind every histogram's
// p50/p90/p99 since ISSUE 4) and reports the sketch's error against the
// exact values, so the accuracy of the production tail numbers is itself
// benchmarked.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/wizard.h"
#include "ipc/in_memory_store.h"
#include "obs/metrics.h"
#include "util/quantile.h"

namespace {

using namespace smartsock;

const char* kRequirement =
    "host_system_load1 < 4\n"
    "host_memory_free >= 100\n"
    "host_cpu_free >= 0.25\n"
    "host_security_level >= 0\n";

void populate(ipc::InMemoryStatusStore& store, std::size_t servers) {
  store.clear();
  std::vector<ipc::SysRecord> sys(servers);
  std::vector<ipc::SecRecord> sec(servers);
  for (std::size_t i = 0; i < servers; ++i) {
    std::string host = "host" + std::to_string(i);
    ipc::SysRecord& record = sys[i];
    ipc::copy_fixed(record.host, ipc::kHostNameLen, host);
    ipc::copy_fixed(record.address, ipc::kAddressLen,
                    "10.0." + std::to_string(i / 256) + "." + std::to_string(i % 256) + ":5000");
    ipc::copy_fixed(record.group, ipc::kGroupLen, "g" + std::to_string(i % 4));
    record.load1 = 0.1 + static_cast<double>(i % 40) / 10.0;
    record.cpu_idle = 0.1 + static_cast<double>(i % 10) / 10.0;
    record.mem_total_mb = 1024;
    record.mem_free_mb = static_cast<double>(50 + (i * 37) % 900);
    ipc::copy_fixed(sec[i].host, ipc::kHostNameLen, host);
    sec[i].level = static_cast<std::int32_t>(i % 3);
  }
  store.replace_sys(sys);
  store.replace_sec(sec);
}

struct Measurement {
  double qps = 0;
  double p50_us = 0;
  double p99_us = 0;
  double sketch_p50_us = 0;  // P² estimate over the same samples
  double sketch_p99_us = 0;
  std::size_t iterations = 0;

  /// Relative sketch error vs the exact percentile, in percent.
  double sketch_p99_err_pct() const {
    return p99_us > 0 ? std::fabs(sketch_p99_us - p99_us) / p99_us * 100.0 : 0;
  }
};

Measurement measure(core::Wizard& wizard, const core::UserRequest& request,
                    double budget_seconds, std::size_t max_iters) {
  std::vector<double> samples;
  samples.reserve(max_iters);
  auto start = std::chrono::steady_clock::now();
  double elapsed = 0;
  while (samples.size() < max_iters && (elapsed < budget_seconds || samples.size() < 10)) {
    auto t0 = std::chrono::steady_clock::now();
    core::WizardReply reply = wizard.handle(request);
    auto t1 = std::chrono::steady_clock::now();
    if (!reply.ok) {
      std::fprintf(stderr, "unexpected query failure: %s\n", reply.error.c_str());
      std::exit(1);
    }
    samples.push_back(std::chrono::duration<double, std::micro>(t1 - t0).count());
    elapsed = std::chrono::duration<double>(t1 - start).count();
  }

  Measurement m;
  m.iterations = samples.size();
  double total_us = 0;
  for (double s : samples) total_us += s;
  m.qps = static_cast<double>(samples.size()) / (total_us / 1e6);
  util::QuantileSketch sketch;
  for (double s : samples) sketch.add(s);
  util::QuantileSketch::Values estimates = sketch.snapshot();
  m.sketch_p50_us = estimates.p50;
  m.sketch_p99_us = estimates.p99;
  std::sort(samples.begin(), samples.end());
  m.p50_us = samples[samples.size() / 2];
  m.p99_us = samples[std::min(samples.size() - 1,
                              static_cast<std::size_t>(samples.size() * 0.99))];
  return m;
}

struct SizeResult {
  std::size_t servers = 0;
  Measurement cold;
  Measurement warm;
};

}  // namespace

int main() {
  const std::size_t kSizes[] = {1, 100, 10000};
  const double kBudget = 1.0;        // seconds per phase
  const std::size_t kMaxIters = 20000;
  std::size_t match_threads = std::max(1u, std::thread::hardware_concurrency());

  std::vector<SizeResult> results;
  ipc::InMemoryStatusStore store;

  smartsock::bench::print_title("wizard query fast path: cold vs warm cache");
  smartsock::bench::print_row({"servers", "path", "qps", "p50 us", "p99 us", "iters"},
                              {9, 6, 12, 12, 12, 8});

  for (std::size_t servers : kSizes) {
    populate(store, servers);

    core::UserRequest request;
    request.sequence = 1;
    request.server_num = 10;
    request.detail = kRequirement;

    SizeResult row;
    row.servers = servers;

    {
      core::WizardConfig config;
      config.cache_size = 0;  // compile + full match, every request
      core::Wizard wizard(config, store);
      row.cold = measure(wizard, request, kBudget, kMaxIters);
    }
    {
      core::WizardConfig config;
      config.cache_size = 128;
      config.match_threads = match_threads;
      core::Wizard wizard(config, store);
      wizard.handle(request);  // populate both caches
      row.warm = measure(wizard, request, kBudget, kMaxIters);
    }

    for (const char* path : {"cold", "warm"}) {
      const Measurement& m = std::string(path) == "cold" ? row.cold : row.warm;
      smartsock::bench::print_row({std::to_string(servers), path,
                                   smartsock::bench::fmt(m.qps, 0),
                                   smartsock::bench::fmt(m.p50_us),
                                   smartsock::bench::fmt(m.p99_us),
                                   std::to_string(m.iterations)},
                                  {9, 6, 12, 12, 12, 8});
    }
    smartsock::bench::print_note("warm/cold speedup: " +
                                 smartsock::bench::fmt(row.warm.qps / row.cold.qps, 1) + "x");
    smartsock::bench::print_note(
        "P2 sketch p99 (cold): " + smartsock::bench::fmt(row.cold.sketch_p99_us) +
        "us vs exact " + smartsock::bench::fmt(row.cold.p99_us) + "us (err " +
        smartsock::bench::fmt(row.cold.sketch_p99_err_pct(), 1) + "%)");
    results.push_back(row);
  }

  std::FILE* json = std::fopen("BENCH_wizard.json", "w");
  if (!json) {
    std::fprintf(stderr, "cannot write BENCH_wizard.json\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"bench\": \"wizard_query\",\n  \"match_threads\": %zu,\n",
               match_threads);
  std::fprintf(json, "  \"sizes\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const SizeResult& row = results[i];
    std::fprintf(json,
                 "    {\"servers\": %zu,\n"
                 "     \"cold\": {\"qps\": %.1f, \"p50_us\": %.2f, \"p99_us\": %.2f, "
                 "\"sketch_p50_us\": %.2f, \"sketch_p99_us\": %.2f, "
                 "\"sketch_p99_err_pct\": %.2f, \"iterations\": %zu},\n"
                 "     \"warm\": {\"qps\": %.1f, \"p50_us\": %.2f, \"p99_us\": %.2f, "
                 "\"sketch_p50_us\": %.2f, \"sketch_p99_us\": %.2f, "
                 "\"sketch_p99_err_pct\": %.2f, \"iterations\": %zu},\n"
                 "     \"warm_speedup\": %.2f}%s\n",
                 row.servers, row.cold.qps, row.cold.p50_us, row.cold.p99_us,
                 row.cold.sketch_p50_us, row.cold.sketch_p99_us,
                 row.cold.sketch_p99_err_pct(), row.cold.iterations, row.warm.qps,
                 row.warm.p50_us, row.warm.p99_us, row.warm.sketch_p50_us,
                 row.warm.sketch_p99_us, row.warm.sketch_p99_err_pct(),
                 row.warm.iterations, row.warm.qps / row.cold.qps,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n");
  // Internal view of the same run: the wizard's registry metrics (cache
  // hit/miss counters, bucketed latency histogram) ride along so the bench
  // trajectory carries what the external timers can't see.
  std::fprintf(json, "  \"metrics\": %s\n",
               obs::MetricsRegistry::instance().snapshot().to_json().c_str());
  std::fprintf(json, "}\n");
  std::fclose(json);
  std::printf("\nwrote BENCH_wizard.json\n");
  return 0;
}
