// Connection-scaling benchmark (ISSUE 6) — the reactor's reason to exist.
//
// Two servers speak the same 32-byte-request / 128-byte-reply protocol over
// loopback:
//   * thread  — the seed's model: one blocking std::thread per accepted
//     connection;
//   * reactor — one net::Reactor event loop multiplexing every connection.
//
// A client fleet holds N concurrent connections open and sweeps request/
// response round trips across them from a fixed pool of driver threads,
// recording per-op latency. The interesting rows: the reactor must hold
// >=1000 concurrent connections (where thread-per-conn burns a kernel thread
// each) with a p99 no worse than thread-per-conn enjoys at its comfortable
// 64-connection scale.
//
// Emits BENCH_connections.json for the CI artifact trail. Flags:
//   --smoke       small run (fewer connections/ops) for CI
//   --self-check  exit nonzero on any op error or if the reactor's p99 at
//                 max scale regresses past thread-per-conn at base scale
#include <sys/resource.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "net/reactor.h"
#include "net/tcp_listener.h"
#include "net/tcp_socket.h"
#include "obs/metrics.h"
#include "util/thread_pool.h"

namespace {

using namespace smartsock;
using namespace std::chrono_literals;

constexpr std::size_t kRequestSize = 32;
constexpr std::size_t kReplySize = 128;

std::string make_request() { return std::string(kRequestSize, 'q'); }
std::string make_reply() { return std::string(kReplySize, 'r'); }

/// Lifts RLIMIT_NOFILE toward its hard cap so the 1000-connection row (two
/// fds per connection: client + server side) does not die on EMFILE.
void raise_fd_limit(std::size_t wanted) {
  rlimit limit{};
  if (::getrlimit(RLIMIT_NOFILE, &limit) != 0) return;
  if (limit.rlim_cur >= wanted) return;
  limit.rlim_cur = std::min<rlim_t>(limit.rlim_max, std::max<rlim_t>(wanted, 4096));
  ::setrlimit(RLIMIT_NOFILE, &limit);
}

/// Kernel threads currently in this process, from /proc/self/status — the
/// resource half of the thread-per-conn story.
int process_thread_count() {
  std::FILE* status = std::fopen("/proc/self/status", "r");
  if (!status) return -1;
  char line[256];
  int threads = -1;
  while (std::fgets(line, sizeof(line), status)) {
    if (std::sscanf(line, "Threads: %d", &threads) == 1) break;
  }
  std::fclose(status);
  return threads;
}

// --- the two servers ----------------------------------------------------------

/// The seed's serving model: accept loop + one blocking thread per connection.
class ThreadPerConnServer {
 public:
  bool start() {
    // Deep backlog: the fleet dials hundreds of connections back to back and
    // the default 16-slot queue would drop SYNs.
    auto listener = net::TcpListener::listen(net::Endpoint::loopback(0), 1024);
    if (!listener) return false;
    listener_ = std::make_unique<net::TcpListener>(std::move(*listener));
    acceptor_ = std::thread([this] { accept_loop(); });
    return true;
  }

  net::Endpoint endpoint() const { return listener_->local_endpoint(); }
  int peak_workers() const { return peak_workers_.load(); }

  void stop() {
    stop_.store(true);
    listener_->close();
    if (acceptor_.joinable()) acceptor_.join();
    std::lock_guard<std::mutex> lock(workers_mu_);
    for (auto& worker : workers_) {
      if (worker.joinable()) worker.join();
    }
    workers_.clear();
  }

 private:
  void accept_loop() {
    while (!stop_.load()) {
      auto socket = listener_->accept(100ms);
      if (!socket) continue;
      std::lock_guard<std::mutex> lock(workers_mu_);
      workers_.emplace_back(
          [this, sock = std::move(*socket)]() mutable { serve(std::move(sock)); });
      int size = static_cast<int>(workers_.size());
      if (size > peak_workers_.load()) peak_workers_.store(size);
    }
  }

  void serve(net::TcpSocket socket) {
    socket.set_no_delay(true);
    socket.set_receive_timeout(500ms);
    const std::string reply = make_reply();
    std::string request;
    while (!stop_.load()) {
      auto in = socket.receive_exact(request, kRequestSize);
      if (!in.ok()) break;  // peer closed, timed out, or reset: worker exits
      if (!socket.send_all(reply).ok()) break;
    }
  }

  std::unique_ptr<net::TcpListener> listener_;
  std::thread acceptor_;
  std::mutex workers_mu_;
  std::vector<std::thread> workers_;
  std::atomic<int> peak_workers_{0};
  std::atomic<bool> stop_{false};
};

/// The reactor model: every connection multiplexed on one event loop.
class ReactorServer {
 public:
  bool start() {
    auto listener = net::TcpListener::listen(net::Endpoint::loopback(0), 1024);
    if (!listener) return false;
    listener_ = std::make_unique<net::TcpListener>(std::move(*listener));
    if (!reactor_.start()) return false;
    listener_->set_nonblocking(true);
    const std::string reply = make_reply();
    listener_id_ = reactor_.add_listener(listener_.get(), [this, reply](net::TcpSocket socket) {
      socket.set_no_delay(true);
      net::ConnectionHandler handler;
      handler.on_data = [reply](net::Connection& connection) {
        while (connection.input().size() >= kRequestSize) {
          connection.consume(kRequestSize);
          connection.send(reply);
        }
      };
      reactor_.add_connection(std::move(socket), std::move(handler));
    });
    return listener_id_ != 0;
  }

  net::Endpoint endpoint() const { return listener_->local_endpoint(); }

  void stop() {
    reactor_.run_on_loop([this] {
      reactor_.remove_listener(listener_id_);
      reactor_.close_all_connections();
    });
    reactor_.stop();
  }

 private:
  net::Reactor reactor_;
  std::unique_ptr<net::TcpListener> listener_;
  net::ListenerId listener_id_ = 0;
};

// --- the client fleet ---------------------------------------------------------

struct RunResult {
  std::string mode;
  std::size_t connections = 0;
  std::size_t ops = 0;
  std::size_t errors = 0;
  double p50_us = 0;
  double p99_us = 0;
  double throughput_rps = 0;
  int server_threads = 0;  // kernel threads the serving model added
};

/// Opens `connections` sockets against `endpoint`, then `kDriverThreads`
/// workers sweep round trips across disjoint stripes of the fleet. Every
/// connection stays open for the whole run — the point is concurrent open
/// connections, not connection churn.
RunResult drive_fleet(const std::string& mode, net::Endpoint endpoint,
                      std::size_t connections, std::size_t sweeps) {
  constexpr std::size_t kDriverThreads = 8;
  RunResult result;
  result.mode = mode;
  result.connections = connections;

  std::vector<std::unique_ptr<net::TcpSocket>> fleet;
  fleet.reserve(connections);
  for (std::size_t i = 0; i < connections; ++i) {
    std::optional<net::TcpSocket> socket;
    for (int attempt = 0; attempt < 3 && !socket; ++attempt) {
      if (attempt > 0) std::this_thread::sleep_for(10ms);
      socket = net::TcpSocket::connect(endpoint, 2s);
    }
    if (!socket) {
      ++result.errors;
      continue;
    }
    socket->set_no_delay(true);
    socket->set_receive_timeout(2s);
    fleet.push_back(std::make_unique<net::TcpSocket>(std::move(*socket)));
  }

  const std::string request = make_request();
  std::vector<std::vector<double>> latencies(kDriverThreads);
  std::vector<std::size_t> errors(kDriverThreads, 0);

  auto sweep_once = [&](std::size_t worker, bool record) {
    for (std::size_t i = worker; i < fleet.size(); i += kDriverThreads) {
      net::TcpSocket& socket = *fleet[i];
      if (!socket.valid()) continue;
      std::string reply;
      auto t0 = std::chrono::steady_clock::now();
      bool ok = socket.send_all(request).ok() &&
                socket.receive_exact(reply, kReplySize).ok();
      auto t1 = std::chrono::steady_clock::now();
      if (!ok) {
        ++errors[worker];
        socket.close();
        continue;
      }
      if (record) {
        latencies[worker].push_back(
            std::chrono::duration<double, std::micro>(t1 - t0).count());
      }
    }
  };

  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> drivers;
  drivers.reserve(kDriverThreads);
  for (std::size_t worker = 0; worker < kDriverThreads; ++worker) {
    drivers.emplace_back([&, worker] {
      sweep_once(worker, /*record=*/false);  // warmup: touch every connection
      for (std::size_t sweep = 0; sweep < sweeps; ++sweep) sweep_once(worker, true);
    });
  }
  for (auto& driver : drivers) driver.join();
  double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  std::vector<double> all;
  for (auto& bucket : latencies) all.insert(all.end(), bucket.begin(), bucket.end());
  for (std::size_t count : errors) result.errors += count;
  result.ops = all.size();
  if (!all.empty()) {
    std::sort(all.begin(), all.end());
    result.p50_us = all[all.size() / 2];
    result.p99_us = all[std::min(all.size() - 1,
                                 static_cast<std::size_t>(all.size() * 0.99))];
    result.throughput_rps = static_cast<double>(all.size()) / elapsed;
  }
  return result;
}

RunResult run_config(const std::string& mode, std::size_t connections,
                     std::size_t sweeps) {
  int threads_before = process_thread_count();
  RunResult result;
  if (mode == "thread") {
    ThreadPerConnServer server;
    if (!server.start()) {
      std::fprintf(stderr, "cannot start thread-per-conn server\n");
      std::exit(1);
    }
    result = drive_fleet(mode, server.endpoint(), connections, sweeps);
    result.server_threads = server.peak_workers();
    server.stop();
  } else {
    ReactorServer server;
    if (!server.start()) {
      std::fprintf(stderr, "cannot start reactor server\n");
      std::exit(1);
    }
    result = drive_fleet(mode, server.endpoint(), connections, sweeps);
    result.server_threads = std::max(1, process_thread_count() - threads_before);
    server.stop();
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool self_check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--self-check") == 0) self_check = true;
  }

  const std::vector<std::size_t> counts =
      smoke ? std::vector<std::size_t>{16, 128} : std::vector<std::size_t>{64, 256, 1000};
  const std::size_t base_count = counts.front();
  const std::size_t max_count = counts.back();
  raise_fd_limit(2 * max_count + 256);

  smartsock::bench::print_title(
      "connection scaling: thread-per-conn vs reactor, " +
      std::to_string(kRequestSize) + "B request / " + std::to_string(kReplySize) +
      "B reply over loopback");
  smartsock::bench::print_row(
      {"mode", "conns", "ops", "errors", "p50 us", "p99 us", "req/s", "threads"},
      {9, 7, 9, 8, 10, 10, 11, 8});

  std::vector<RunResult> table;
  for (std::size_t count : counts) {
    // Ops budget scales down as the fleet grows so every row finishes fast.
    std::size_t sweeps = std::max<std::size_t>(smoke ? 4 : 8, (smoke ? 2000 : 20000) / count);
    for (const char* mode : {"thread", "reactor"}) {
      RunResult row = run_config(mode, count, sweeps);
      table.push_back(row);
      smartsock::bench::print_row(
          {row.mode, std::to_string(row.connections), std::to_string(row.ops),
           std::to_string(row.errors), smartsock::bench::fmt(row.p50_us),
           smartsock::bench::fmt(row.p99_us),
           smartsock::bench::fmt(row.throughput_rps, 0),
           std::to_string(row.server_threads)},
          {9, 7, 9, 8, 10, 10, 11, 8});
    }
  }

  auto find_row = [&](const std::string& mode, std::size_t count) -> const RunResult& {
    for (const RunResult& row : table) {
      if (row.mode == mode && row.connections == count) return row;
    }
    std::fprintf(stderr, "missing row %s/%zu\n", mode.c_str(), count);
    std::exit(1);
  };
  const RunResult& thread_base = find_row("thread", base_count);
  const RunResult& reactor_max = find_row("reactor", max_count);
  smartsock::bench::print_note(
      "reactor holds " + std::to_string(reactor_max.connections) +
      " concurrent connections on " + std::to_string(reactor_max.server_threads) +
      " thread(s); thread-per-conn needed " +
      std::to_string(find_row("thread", max_count).server_threads) + " at the same scale");

  std::FILE* json = std::fopen("BENCH_connections.json", "w");
  if (!json) {
    std::fprintf(stderr, "cannot write BENCH_connections.json\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"bench\": \"connections\",\n  \"smoke\": %s,\n",
               smoke ? "true" : "false");
  std::fprintf(json, "  \"request_bytes\": %zu,\n  \"reply_bytes\": %zu,\n  \"rows\": [\n",
               kRequestSize, kReplySize);
  for (std::size_t i = 0; i < table.size(); ++i) {
    const RunResult& row = table[i];
    std::fprintf(json,
                 "    {\"mode\": \"%s\", \"connections\": %zu, \"ops\": %zu, "
                 "\"errors\": %zu, \"p50_us\": %.2f, \"p99_us\": %.2f, "
                 "\"throughput_rps\": %.1f, \"server_threads\": %d}%s\n",
                 row.mode.c_str(), row.connections, row.ops, row.errors, row.p50_us,
                 row.p99_us, row.throughput_rps, row.server_threads,
                 i + 1 < table.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n");
  std::fprintf(json, "  \"metrics\": %s\n",
               smartsock::obs::MetricsRegistry::instance().snapshot().to_json().c_str());
  std::fprintf(json, "}\n");
  std::fclose(json);
  std::printf("\nwrote BENCH_connections.json\n");

  if (self_check) {
    // Gate 1: every round trip on every row must have succeeded.
    for (const RunResult& row : table) {
      if (row.errors != 0 || row.ops == 0) {
        std::fprintf(stderr, "SELF-CHECK FAILED: %s/%zu had %zu errors over %zu ops\n",
                     row.mode.c_str(), row.connections, row.errors, row.ops);
        return 1;
      }
    }
    // Gate 2: the reactor at max scale must not regress past thread-per-conn
    // at its comfortable base scale (25% + 250us grace absorbs scheduler
    // noise in CI).
    double budget = thread_base.p99_us * 1.25 + 250.0;
    if (reactor_max.p99_us > budget) {
      std::fprintf(stderr,
                   "SELF-CHECK FAILED: reactor p99 %.1fus at %zu conns exceeds "
                   "thread-per-conn %.1fus at %zu conns (budget %.1fus)\n",
                   reactor_max.p99_us, max_count, thread_base.p99_us, base_count,
                   budget);
      return 1;
    }
    std::printf("self-check ok: reactor p99 %.1fus @ %zu conns vs thread %.1fus @ %zu\n",
                reactor_max.p99_us, max_count, thread_base.p99_us, base_count);
  }
  return 0;
}
