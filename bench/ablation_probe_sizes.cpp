// Ablation — the three probe-size rules of §3.3.2, violated one at a time.
//
// Extends Table 3.3: for each rule we pick a size pair that satisfies the
// other two and breaks it, and show the estimate error that results.
#include "bench_util.h"
#include "bwest/one_way_udp_stream.h"
#include "sim/testbed.h"

using namespace smartsock;

namespace {
double estimate_with(int s1, int s2, std::uint64_t seed) {
  sim::NetworkPath path(sim::sagit_to_suna(1500));
  path.reseed(seed);
  bwest::SimProber prober(path);
  bwest::OneWayStreamConfig config;
  config.size1_bytes = s1;
  config.size2_bytes = s2;
  config.probes_per_size = 40;
  auto estimate = bwest::OneWayUdpStreamEstimator(config).estimate(prober);
  return estimate.valid() ? estimate.bw_mbps : 0.0;
}
}  // namespace

int main() {
  const double truth = sim::sagit_to_suna(1500).available_bw_mbps();
  bench::print_title("Ablation: probe-size rule violations (truth " +
                     bench::fmt(truth, 1) + " Mbps)");
  bench::print_row({"case", "sizes", "avg est", "err %"}, {40, 14, 10, 8});

  struct Case {
    const char* label;
    int s1, s2;
  };
  const Case cases[] = {
      {"all rules satisfied (1600~2900)", 1600, 2900},
      {"rule 1 broken: both below MTU (400~1200)", 400, 1200},
      {"rule 1 broken: straddling MTU (800~2400)", 800, 2400},
      {"rule 2 broken: huge probes (20000~40000)", 20000, 40000},
      {"rule 3 broken: unequal fragments (1600~5900)", 1600, 5900},
  };

  for (const Case& c : cases) {
    double sum = 0;
    const int runs = 8;
    for (int run = 0; run < runs; ++run) {
      sum += estimate_with(c.s1, c.s2, 500 + static_cast<std::uint64_t>(run));
    }
    double avg = sum / runs;
    bench::print_row({c.label, std::to_string(c.s1) + "~" + std::to_string(c.s2),
                      bench::fmt(avg, 1),
                      bench::fmt(100.0 * std::abs(avg - truth) / truth, 1)},
                     {40, 14, 10, 8});
  }
  bench::print_note("");
  bench::print_note("sub-MTU pairs inherit the Speed_init bias (Eq 3.7); oversized and");
  bench::print_note("fragment-unequal pairs pay per-fragment noise and header skew.");
  return 0;
}
