// Ablation — estimator choice under increasing jitter and load.
//
// DESIGN.md calls out the thesis's method choice: the one-way UDP stream is
// a single-ended compromise. This sweep shows where each method holds up:
// packet pair collapses under jitter (the thesis's pipechar critique), SLoPS
// stays tight, and the one-way stream sits in between.
#include "bench_util.h"
#include "bwest/one_way_udp_stream.h"
#include "bwest/packet_pair.h"
#include "bwest/slops.h"
#include "sim/testbed.h"

using namespace smartsock;

int main() {
  bench::print_title("Ablation: estimator accuracy vs jitter and load (truth printed)");
  bench::print_row({"jitter(ms)", "util", "truth", "one-way", "pkt-pair", "slops"},
                   {12, 8, 8, 10, 10, 10});

  for (double jitter : {0.002, 0.01, 0.1, 1.0, 5.0}) {
    for (double utilization : {0.05, 0.30}) {
      sim::PathConfig config = sim::sagit_to_suna(1500);
      config.jitter_stddev_ms = jitter;
      config.utilization = utilization;

      sim::NetworkPath path1(config);
      bwest::SimProber prober(path1);
      auto stream = bwest::OneWayUdpStreamEstimator::optimal_sizes_for_mtu(1500);
      stream.probes_per_size = 40;
      auto one_way = bwest::OneWayUdpStreamEstimator(stream).estimate(prober);

      sim::NetworkPath path2(config);
      auto pair = bwest::PacketPairEstimator().estimate(path2);

      sim::NetworkPath path3(config);
      auto slops = bwest::SlopsEstimator().estimate(path3);

      bench::print_row(
          {bench::fmt(jitter, 3), bench::fmt(utilization, 2),
           bench::fmt(config.available_bw_mbps(), 1),
           one_way.valid() ? bench::fmt(one_way.bw_mbps, 1) : "fail",
           pair.valid() ? bench::fmt(pair.bw_mbps, 1) : "fail",
           slops.valid() ? bench::fmt(slops.bw_mbps, 1) : "fail"},
          {12, 8, 8, 10, 10, 10});
    }
  }
  bench::print_note("");
  bench::print_note("expected: packet-pair degrades first as jitter grows (thesis §3.3.1:");
  bench::print_note("pipechar is 'highly sensitive to network delay variations'); the");
  bench::print_note("one-way stream follows at ~1 ms; SLoPS holds longest but saturates to");
  bench::print_note("its upper search bound once jitter buries the queueing signal.");
  return 0;
}
