// Incremental-replication benchmark (ISSUE 5) — measures what the delta
// protocol and the copy-on-write snapshot hot path buy over the seed's
// full-copy wire at the ROADMAP's 10k-record scale.
//
// Three measurements, each at 1% and 100% churn per push cycle:
//   * bytes/push — full-snapshot wire (delta disabled, the pre-delta
//     transmitter) vs delta wire, over a real loopback receiver;
//   * push latency — wall time of transmit_once() for the same two wires;
//   * wizard match throughput — handle() qps while the store churns, to show
//     the snapshot-pointer read path survives write pressure (low churn
//     reuses the cached snapshot; 100% churn rebuilds it every query).
//
// Emits BENCH_replication.json for the CI artifact trail. Flags:
//   --smoke       small run (2k records, fewer rounds) for CI
//   --self-check  exit nonzero unless delta bytes/push at 1% churn is at
//                 least 10x smaller than the full-snapshot wire's
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/wizard.h"
#include "ipc/in_memory_store.h"
#include "obs/metrics.h"
#include "transport/receiver.h"
#include "transport/transmitter.h"

namespace {

using namespace smartsock;

const char* kRequirement =
    "host_system_load1 < 4\n"
    "host_memory_free >= 100\n";

ipc::SysRecord make_record(std::size_t i, double load) {
  ipc::SysRecord record;
  std::string host = "host" + std::to_string(i);
  ipc::copy_fixed(record.host, ipc::kHostNameLen, host);
  ipc::copy_fixed(record.address, ipc::kAddressLen,
                  "10.0." + std::to_string(i / 256) + "." + std::to_string(i % 256) +
                      ":5000");
  ipc::copy_fixed(record.group, ipc::kGroupLen, "g" + std::to_string(i % 4));
  record.load1 = load;
  record.cpu_idle = 0.5;
  record.mem_total_mb = 1024;
  record.mem_free_mb = 512;
  record.updated_ns = 1;
  return record;
}

void populate(ipc::InMemoryStatusStore& store, std::size_t servers) {
  std::vector<ipc::SysRecord> sys(servers);
  for (std::size_t i = 0; i < servers; ++i) sys[i] = make_record(i, 0.5);
  store.replace_sys(sys);
}

/// Rewrites `count` records (round-robin over the keyspace) with a fresh
/// load value — the churn generator between push cycles.
void churn_records(ipc::InMemoryStatusStore& store, std::size_t servers,
                   std::size_t count, std::size_t& cursor, double load) {
  for (std::size_t i = 0; i < count; ++i) {
    store.put_sys(make_record(cursor % servers, load));
    ++cursor;
  }
}

struct WireResult {
  double bytes_per_push = 0;
  double push_p50_us = 0;
  double push_p99_us = 0;
  std::uint64_t delta_pushes = 0;
  std::uint64_t full_pushes = 0;
};

/// Runs `rounds` push cycles over loopback, churning `churn_count` records
/// before each one, and reports bytes/push and push latency percentiles.
/// `delta` selects the wire: false reproduces the pre-delta transmitter.
WireResult measure_wire(std::size_t servers, std::size_t churn_count,
                        std::size_t rounds, bool delta) {
  ipc::InMemoryStatusStore tx_store;
  ipc::InMemoryStatusStore rx_store;
  populate(tx_store, servers);

  transport::Receiver receiver(transport::ReceiverConfig{}, rx_store);
  if (!receiver.start()) {
    std::fprintf(stderr, "cannot start loopback receiver\n");
    std::exit(1);
  }
  transport::TransmitterConfig tx_config;
  tx_config.receiver = receiver.endpoint();
  tx_config.delta_enabled = delta;
  transport::Transmitter transmitter(tx_config, tx_store);

  // Anchor push: lets the delta wire establish replica state so the measured
  // rounds are steady-state; the full wire ships everything regardless.
  if (!transmitter.transmit_once()) {
    std::fprintf(stderr, "anchor push failed\n");
    std::exit(1);
  }
  std::uint64_t bytes_before = transmitter.bytes_sent();
  std::uint64_t pushes_before = transmitter.delta_pushes() + transmitter.full_pushes();

  std::size_t cursor = 0;
  std::vector<double> latencies_us;
  latencies_us.reserve(rounds);
  for (std::size_t round = 0; round < rounds; ++round) {
    churn_records(tx_store, servers, churn_count, cursor,
                  0.1 + static_cast<double>(round % 10) / 10.0);
    auto t0 = std::chrono::steady_clock::now();
    if (!transmitter.transmit_once()) {
      std::fprintf(stderr, "push %zu failed\n", round);
      std::exit(1);
    }
    auto t1 = std::chrono::steady_clock::now();
    latencies_us.push_back(std::chrono::duration<double, std::micro>(t1 - t0).count());
  }
  receiver.stop();

  if (rx_store.sys_records().size() != tx_store.sys_records().size()) {
    std::fprintf(stderr, "replica diverged: %zu vs %zu records\n",
                 rx_store.sys_records().size(), tx_store.sys_records().size());
    std::exit(1);
  }

  WireResult result;
  std::uint64_t pushes = transmitter.delta_pushes() + transmitter.full_pushes() -
                         pushes_before;
  result.bytes_per_push =
      static_cast<double>(transmitter.bytes_sent() - bytes_before) /
      static_cast<double>(pushes ? pushes : 1);
  std::sort(latencies_us.begin(), latencies_us.end());
  result.push_p50_us = latencies_us[latencies_us.size() / 2];
  result.push_p99_us = latencies_us[std::min(
      latencies_us.size() - 1, static_cast<std::size_t>(latencies_us.size() * 0.99))];
  result.delta_pushes = transmitter.delta_pushes();
  result.full_pushes = transmitter.full_pushes();
  return result;
}

/// Wizard handle() throughput while the store churns between queries: the
/// copy-free read path takes one SnapshotPtr per query, so low churn keeps
/// reusing the cached snapshot object and high churn rebuilds it per write.
double measure_match_qps(std::size_t servers, std::size_t churn_count,
                         double budget_seconds) {
  ipc::InMemoryStatusStore store;
  populate(store, servers);

  core::WizardConfig config;
  config.cache_size = 0;  // force a real match per query — no reply cache
  core::Wizard wizard(config, store);

  core::UserRequest request;
  request.sequence = 1;
  request.server_num = 10;
  request.detail = kRequirement;

  std::size_t cursor = 0;
  std::size_t queries = 0;
  auto start = std::chrono::steady_clock::now();
  double elapsed = 0;
  while (elapsed < budget_seconds || queries < 10) {
    churn_records(store, servers, churn_count, cursor, 0.3);
    core::WizardReply reply = wizard.handle(request);
    if (!reply.ok) {
      std::fprintf(stderr, "query failed: %s\n", reply.error.c_str());
      std::exit(1);
    }
    ++queries;
    elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
                  .count();
  }
  return static_cast<double>(queries) / elapsed;
}

struct ChurnRow {
  double churn_pct = 0;
  std::size_t churn_count = 0;
  WireResult full;
  WireResult delta;
  double match_qps = 0;

  double byte_ratio() const {
    return delta.bytes_per_push > 0 ? full.bytes_per_push / delta.bytes_per_push : 0;
  }
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool self_check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--self-check") == 0) self_check = true;
  }

  const std::size_t servers = smoke ? 2000 : 10000;
  const std::size_t rounds = smoke ? 20 : 50;
  const double match_budget = smoke ? 0.5 : 1.5;
  const double churns[] = {1.0, 100.0};

  smartsock::bench::print_title(
      "incremental replication: delta vs full-snapshot wire, " +
      std::to_string(servers) + " records");
  smartsock::bench::print_row(
      {"churn", "wire", "bytes/push", "p50 us", "p99 us", "pushes"},
      {8, 7, 14, 12, 12, 8});

  std::vector<ChurnRow> table;
  for (double churn_pct : churns) {
    ChurnRow row;
    row.churn_pct = churn_pct;
    row.churn_count = std::max<std::size_t>(
        1, static_cast<std::size_t>(static_cast<double>(servers) * churn_pct / 100.0));
    row.full = measure_wire(servers, row.churn_count, rounds, /*delta=*/false);
    row.delta = measure_wire(servers, row.churn_count, rounds, /*delta=*/true);
    row.match_qps = measure_match_qps(servers, row.churn_count, match_budget);

    for (const char* wire : {"full", "delta"}) {
      const WireResult& r = std::strcmp(wire, "full") == 0 ? row.full : row.delta;
      smartsock::bench::print_row(
          {smartsock::bench::fmt(churn_pct, 0) + "%", wire,
           smartsock::bench::fmt(r.bytes_per_push, 0),
           smartsock::bench::fmt(r.push_p50_us), smartsock::bench::fmt(r.push_p99_us),
           std::to_string(r.delta_pushes + r.full_pushes)},
          {8, 7, 14, 12, 12, 8});
    }
    smartsock::bench::print_note(
        "full/delta byte ratio: " + smartsock::bench::fmt(row.byte_ratio(), 1) +
        "x; match throughput under churn: " +
        smartsock::bench::fmt(row.match_qps, 0) + " qps");
    table.push_back(row);
  }

  std::FILE* json = std::fopen("BENCH_replication.json", "w");
  if (!json) {
    std::fprintf(stderr, "cannot write BENCH_replication.json\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"bench\": \"replication\",\n  \"records\": %zu,\n", servers);
  std::fprintf(json, "  \"rounds\": %zu,\n  \"smoke\": %s,\n  \"churns\": [\n", rounds,
               smoke ? "true" : "false");
  for (std::size_t i = 0; i < table.size(); ++i) {
    const ChurnRow& row = table[i];
    std::fprintf(
        json,
        "    {\"churn_pct\": %.1f, \"churn_records\": %zu,\n"
        "     \"full\":  {\"bytes_per_push\": %.1f, \"push_p50_us\": %.2f, "
        "\"push_p99_us\": %.2f},\n"
        "     \"delta\": {\"bytes_per_push\": %.1f, \"push_p50_us\": %.2f, "
        "\"push_p99_us\": %.2f},\n"
        "     \"full_delta_byte_ratio\": %.2f,\n"
        "     \"match_qps_under_churn\": %.1f}%s\n",
        row.churn_pct, row.churn_count, row.full.bytes_per_push, row.full.push_p50_us,
        row.full.push_p99_us, row.delta.bytes_per_push, row.delta.push_p50_us,
        row.delta.push_p99_us, row.byte_ratio(), row.match_qps,
        i + 1 < table.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n");
  std::fprintf(json, "  \"metrics\": %s\n",
               obs::MetricsRegistry::instance().snapshot().to_json().c_str());
  std::fprintf(json, "}\n");
  std::fclose(json);
  std::printf("\nwrote BENCH_replication.json\n");

  if (self_check) {
    // The acceptance gate: at 1% churn the delta wire must ship at least 10x
    // fewer bytes per push than the full-snapshot wire.
    const ChurnRow& low = table.front();
    if (low.byte_ratio() < 10.0) {
      std::fprintf(stderr, "SELF-CHECK FAILED: byte ratio %.2fx < 10x at %.0f%% churn\n",
                   low.byte_ratio(), low.churn_pct);
      return 1;
    }
    std::printf("self-check ok: %.1fx byte reduction at %.0f%% churn\n",
                low.byte_ratio(), low.churn_pct);
  }
  return 0;
}
