// Ablation — probe interval vs staleness and selection quality.
//
// §4.1 sets the probe interval at seconds and expires servers after 3 missed
// intervals. A long interval saves bandwidth but leaves the wizard blind to
// load changes for up to an interval: this bench flips a host to Super_PI
// load and measures how long the wizard keeps recommending it.
#include "bench_util.h"
#include "harness/cluster_harness.h"
#include "util/counters.h"

using namespace smartsock;

namespace {

double stale_window_ms(util::Duration probe_interval) {
  harness::HarnessOptions options;
  options.hosts = {*sim::find_paper_host("dalmatian"), *sim::find_paper_host("telesto")};
  options.probe_interval = probe_interval;
  options.transfer_interval = std::chrono::milliseconds(30);
  harness::ClusterHarness cluster(options);
  if (!cluster.start() || !cluster.wait_for_all_reports(std::chrono::seconds(5))) return -1;

  core::SmartClient client = cluster.make_client(9);
  const char* requirement = "host_system_load1 < 0.5";

  // Load dalmatian *without* forcing a refresh — the wizard only learns
  // through the periodic pipeline.
  cluster.set_workload("dalmatian", apps::WorkloadKind::kSuperPi);
  util::Stopwatch stopwatch(util::SteadyClock::instance());
  double detected_ms = -1;
  while (stopwatch.elapsed_seconds() < 5.0) {
    auto reply = client.query(requirement, 2);
    bool still_listed = false;
    for (const auto& server : reply.servers) {
      if (server.host == "dalmatian") still_listed = true;
    }
    if (!still_listed) {
      detected_ms = util::to_millis(stopwatch.elapsed());
      break;
    }
    util::SteadyClock::instance().sleep_for(std::chrono::milliseconds(10));
  }
  cluster.stop();
  return detected_ms;
}

}  // namespace

int main() {
  bench::print_title("Ablation: probe interval vs workload-detection latency");
  bench::print_row({"probe interval (ms)", "detection latency (ms)"}, {22, 24});
  for (int interval_ms : {50, 150, 400, 1000}) {
    double detected = stale_window_ms(std::chrono::milliseconds(interval_ms));
    bench::print_row({std::to_string(interval_ms),
                      detected >= 0 ? bench::fmt(detected, 0) : "not detected in 5 s"},
                     {22, 24});
  }
  bench::print_note("");
  bench::print_note("detection latency tracks the probe interval: the status pipeline");
  bench::print_note("cannot react faster than a probing period (§4.1's trade-off).");
  return 0;
}
