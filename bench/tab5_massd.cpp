// Tables 5.7 / 5.8 / 5.9 (Figures 5.4-5.6) — massive download with 1, 2 and
// 3 servers, random casts vs the wizard's bandwidth-driven pick. One binary
// per table via SMARTSOCK_BENCH_SERVERS.
//
// The file-server groups are shaped to the paper's per-run bandwidths
// (rshaper substitute); the network monitor publishes those bandwidths into
// netdb; the smart cast answers "monitor_network_bw > X". The compared
// metric is the thesis's: average per-server throughput in KB/s.
#include "bench_util.h"
#include "harness/experiment.h"

#ifndef SMARTSOCK_BENCH_SERVERS
#define SMARTSOCK_BENCH_SERVERS 1
#endif

using namespace smartsock;
using harness::ExperimentRow;

namespace {

struct Cast {
  const char* label;
  std::vector<std::string> names;  // empty => wizard-selected
  double paper_kbps;
};

struct TableSpec {
  const char* title;
  double group1_mbps;
  double group2_mbps;
  const char* requirement;
  std::size_t servers;
  std::vector<Cast> casts;
};

TableSpec spec_for(int servers) {
  switch (servers) {
    case 1:
      return {"Table 5.7 / Fig 5.4: massd 1 vs 1",
              6.72,
              1.33,
              "monitor_network_bw > 6",
              1,
              {{"random", {"pandora-x"}, 170.0}, {"smart", {}, 860.0}}};
    case 2:
      return {"Table 5.8 / Fig 5.5: massd 2 vs 2",
              5.01,
              7.67,
              "monitor_network_bw > 7",
              2,
              {{"random1", {"mimas", "telesto"}, 660.0},
               {"random2", {"telesto", "titan-x"}, 795.0},
               {"smart", {}, 994.0}}};
    default:
      return {"Table 5.9 / Fig 5.6: massd 3 vs 3",
              5.99,
              2.92,
              "monitor_network_bw > 5",
              3,
              {{"random1", {"dione", "titan-x", "pandora-x"}, 387.0},
               {"random2", {"mimas", "titan-x", "dione"}, 520.0},
               {"random3", {"telesto", "mimas", "dione"}, 634.0},
               {"smart", {}, 796.0}}};
  }
}

}  // namespace

int main() {
  TableSpec spec = spec_for(SMARTSOCK_BENCH_SERVERS);

  harness::HarnessOptions options = harness::massd_harness_options();
  // The six file servers of §5.3.2 (groups 1 and 2).
  options.hosts.clear();
  for (int group : {1, 2}) {
    for (const std::string& name : sim::massd_group(group)) {
      options.hosts.push_back(*sim::find_paper_host(name));
    }
  }
  harness::ClusterHarness cluster(options);
  if (!cluster.start() || !cluster.wait_for_all_reports(std::chrono::seconds(5))) {
    std::fprintf(stderr, "harness failed to start\n");
    return 1;
  }

  cluster.set_group_metrics("group-1", 0.5, spec.group1_mbps);
  cluster.set_group_metrics("group-2", 0.5, spec.group2_mbps);
  cluster.refresh_now();

  harness::MassdExperiment experiment;
  experiment.data_kb = 600 * static_cast<std::uint64_t>(spec.servers) + 400;
  experiment.block_kb = 100;  // the thesis's blk

  bench::print_title(spec.title + std::string("  (group-1 ") +
                     bench::fmt(spec.group1_mbps) + " Mbps, group-2 " +
                     bench::fmt(spec.group2_mbps) + " Mbps, blk=100 KB)");
  bench::print_row({"set", "servers", "avg KB/s", "paper KB/s", "total KB/s"},
                   {10, 32, 10, 12, 12});

  auto pool = cluster.all_servers();
  bool all_ok = true;
  double smart_avg = 0.0, best_random_avg = 0.0;

  for (const Cast& cast : spec.casts) {
    std::vector<core::ServerEntry> servers;
    std::string error;
    if (cast.names.empty()) {
      servers = harness::smart_selection(cluster, spec.requirement, spec.servers, &error);
    } else {
      servers = harness::pick_named(pool, cast.names);
    }
    ExperimentRow row = harness::run_massd(cluster, servers, experiment, cast.label);
    if (!row.ok && row.error.empty()) row.error = error;
    bench::print_row({cast.label, row.servers_joined(),
                      row.ok ? bench::fmt(row.avg_per_server_kbps, 0) : row.error,
                      bench::fmt(cast.paper_kbps, 0),
                      row.ok ? bench::fmt(row.throughput_kbps, 0) : "-"},
                     {10, 32, 10, 12, 12});
    all_ok = all_ok && row.ok;
    if (std::string(cast.label) == "smart") {
      smart_avg = row.avg_per_server_kbps;
    } else {
      best_random_avg = std::max(best_random_avg, row.avg_per_server_kbps);
    }
  }

  bench::print_note("");
  bench::print_note(smart_avg > best_random_avg
                        ? "shape holds: smart beats every random cast"
                        : "SHAPE VIOLATION: a random cast beat the smart selection");
  cluster.stop();
  return all_ok && smart_avg > best_random_avg ? 0 : 1;
}
