// Microbenchmarks (google-benchmark) — requirement-language costs on the
// wizard's hot path: the wizard compiles once per request and evaluates once
// per server record, so both paths are measured, plus the probe-report parse
// the system monitor performs per datagram.
#include <benchmark/benchmark.h>

#include "core/server_matcher.h"
#include "lang/requirement.h"
#include "probe/status_report.h"

namespace {

const char* kThesisRequirement =
    "host_system_load1 < 1\n"
    "host_memory_used <= 250*1024*1024\n"
    "host_cpu_free >= 0.9\n"
    "host_network_tbytesps < 1024*1024\n"
    "user_denied_host1 = 137.132.90.182\n"
    "user_preferred_host1 = sagit.ddns.comp.nus.edu.sg\n";

void BM_CompileRequirement(benchmark::State& state) {
  for (auto _ : state) {
    auto requirement = smartsock::lang::Requirement::compile(kThesisRequirement);
    benchmark::DoNotOptimize(requirement);
  }
}
BENCHMARK(BM_CompileRequirement);

void BM_EvaluateRequirement(benchmark::State& state) {
  auto requirement = smartsock::lang::Requirement::compile(kThesisRequirement);
  smartsock::lang::AttributeSet attrs{
      {"host_system_load1", 0.3},      {"host_memory_used", 100.0 * 1024 * 1024},
      {"host_cpu_free", 0.95},         {"host_network_tbytesps", 1000.0},
  };
  for (auto _ : state) {
    auto outcome = requirement->evaluate(attrs);
    benchmark::DoNotOptimize(outcome);
  }
}
BENCHMARK(BM_EvaluateRequirement);

void BM_MatchSixtyServers(benchmark::State& state) {
  auto requirement = smartsock::lang::Requirement::compile("host_cpu_free > 0.5");
  smartsock::core::MatchInput input;
  for (int i = 0; i < 60; ++i) {
    smartsock::ipc::SysRecord record;
    smartsock::ipc::copy_fixed(record.host, smartsock::ipc::kHostNameLen,
                               "host" + std::to_string(i));
    smartsock::ipc::copy_fixed(record.address, smartsock::ipc::kAddressLen,
                               "10.0.0." + std::to_string(i) + ":1");
    record.cpu_idle = (i % 2) ? 0.9 : 0.2;
    input.sys.push_back(record);
  }
  smartsock::core::ServerMatcher matcher;
  for (auto _ : state) {
    auto result = matcher.match(*requirement, input, 60);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_MatchSixtyServers);

void BM_ParseProbeReport(benchmark::State& state) {
  smartsock::probe::StatusReport report;
  report.host = "dalmatian";
  report.address = "127.0.0.1:5001";
  report.group = "seg1";
  report.load1 = 0.25;
  report.bogomips = 4771.02;
  std::string wire = report.to_wire();
  for (auto _ : state) {
    auto parsed = smartsock::probe::StatusReport::from_wire(wire);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_ParseProbeReport);

}  // namespace

BENCHMARK_MAIN();
