// Sharded-ingest benchmark (ISSUE 10) — measures what the SO_REUSEPORT
// shard groups + recvmmsg batching buy on the two UDP data planes:
//
//   * Phase A: monitor ingest — N sender sockets blast probe reports at a
//     SystemMonitor running 1/2/4 ingest shards; reports/sec ingested is
//     the figure of merit. The kernel spreads senders across shards by
//     4-tuple hash, each shard drains into its own ShardedStatusStore
//     partition, so adding shards adds ingest lanes end to end.
//   * Phase B: wizard serving — closed-loop clients (one socket each, so
//     reuseport steers each client to one shard) issue requests against a
//     preloaded store; replies/sec is the figure of merit.
//
// Emits BENCH_ingest.json for the CI artifact trail. Flags:
//   --smoke       small run (shards {1,2}, short budgets) for CI
//   --self-check  exit nonzero unless scaling holds for the core count:
//                   >=4 cpus, full run:  4-shard ingest >= 2.5x 1-shard
//                   >=2 cpus:            best multi-shard >= 0.95x 1-shard
//                   1 cpu:               sanity only (all phases made
//                                        progress, shard groups fully bound)
//
// The scaling gates are conditional on std::thread::hardware_concurrency()
// because shards can only scale with real cores under them; the JSON
// records `cpus` so readers can judge the numbers.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/wire.h"
#include "core/wizard.h"
#include "ipc/sharded_store.h"
#include "monitor/system_monitor.h"
#include "net/udp_socket.h"
#include "obs/metrics.h"
#include "probe/status_report.h"
#include "util/clock.h"

namespace {

using namespace smartsock;

const char* kRequirement =
    "host_system_load1 < 4\n"
    "host_memory_free >= 100\n";

probe::StatusReport make_report(std::size_t sender, std::size_t k) {
  probe::StatusReport report;
  report.host = "bench" + std::to_string(sender) + "-" + std::to_string(k);
  report.address = "10." + std::to_string(sender) + "." + std::to_string(k / 256) +
                   "." + std::to_string(k % 256) + ":5000";
  report.group = "g" + std::to_string(k % 4);
  report.load1 = 0.5;
  report.cpu_idle = 0.9;
  report.mem_total_mb = 1024;
  report.mem_free_mb = 512;
  return report;
}

struct IngestRow {
  std::size_t shards = 0;
  std::size_t bound_shards = 0;
  double reports_per_sec = 0;
  std::uint64_t ingested = 0;
  std::uint64_t sent = 0;
  std::uint64_t kernel_drops = 0;
};

/// Phase A: `senders` sockets blast prebuilt reports at a sharded monitor
/// for `budget_seconds`; returns ingested reports/sec.
IngestRow measure_monitor(std::size_t shards, std::size_t senders,
                          std::size_t hosts_per_sender, double budget_seconds) {
  ipc::ShardedStatusStore store(shards);

  monitor::SystemMonitorConfig config;
  config.probe_interval = std::chrono::seconds(60);  // no mid-run expiry
  config.accept_tcp = false;
  config.ingest_shards = shards;
  config.rcvbuf_bytes = 1 << 21;
  monitor::SystemMonitor monitor(config, store);
  if (!monitor.valid() || !monitor.start()) {
    std::fprintf(stderr, "cannot start monitor with %zu shards\n", shards);
    std::exit(1);
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> sent{0};
  std::vector<std::thread> threads;
  threads.reserve(senders);
  for (std::size_t s = 0; s < senders; ++s) {
    threads.emplace_back([&, s] {
      auto sock = net::UdpSocket::bind(net::Endpoint::loopback(0));
      if (!sock) return;
      // One wire batch covering every host this sender owns; reuseport
      // pins this socket to one shard, so each shard sees a disjoint
      // slice of the fleet.
      std::vector<net::Datagram> batch(hosts_per_sender);
      for (std::size_t k = 0; k < hosts_per_sender; ++k) {
        batch[k].payload = make_report(s, k).to_wire();
        batch[k].peer = monitor.endpoint();
      }
      std::uint64_t local = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        local += sock->send_batch(batch);
        // Yield so ingest threads get cycles on small machines; senders
        // otherwise monopolize the cores they share with the shards.
        std::this_thread::yield();
      }
      sent.fetch_add(local, std::memory_order_relaxed);
    });
  }

  auto t0 = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::duration<double>(budget_seconds));
  stop.store(true);
  for (auto& t : threads) t.join();
  // Let the shards drain what is already queued before reading the count.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  IngestRow row;
  row.shards = shards;
  row.bound_shards = monitor.ingest_shards();
  row.ingested = monitor.reports_received();
  row.sent = sent.load();
  row.reports_per_sec = static_cast<double>(row.ingested) / elapsed;
  for (std::size_t i = 0; i < monitor.ingest_shards(); ++i)
    row.kernel_drops += monitor.shard_kernel_drops(i);
  monitor.stop();
  return row;
}

struct ServeRow {
  std::size_t shards = 0;
  std::size_t bound_shards = 0;
  double replies_per_sec = 0;
  std::uint64_t replies = 0;
  std::uint64_t timeouts = 0;
};

/// Phase B: closed-loop clients against a sharded wizard over a preloaded
/// store; returns replies/sec.
ServeRow measure_wizard(std::size_t shards, std::size_t clients,
                        std::size_t records, double budget_seconds) {
  ipc::ShardedStatusStore store(shards);
  std::vector<ipc::SysRecord> sys(records);
  for (std::size_t i = 0; i < records; ++i) {
    ipc::SysRecord record;
    std::string host = "host" + std::to_string(i);
    ipc::copy_fixed(record.host, ipc::kHostNameLen, host);
    ipc::copy_fixed(record.address, ipc::kAddressLen,
                    "10.1." + std::to_string(i / 256) + "." + std::to_string(i % 256) +
                        ":5000");
    ipc::copy_fixed(record.group, ipc::kGroupLen, "g0");
    record.load1 = 0.5;
    record.cpu_idle = 0.9;
    record.mem_total_mb = 1024;
    record.mem_free_mb = 512;
    record.updated_ns = 1;
    sys[i] = record;
  }
  store.replace_sys(sys);

  core::WizardConfig config;
  config.ingest_shards = shards;
  config.rcvbuf_bytes = 1 << 21;
  core::Wizard wizard(config, store);
  if (!wizard.valid() || !wizard.start()) {
    std::fprintf(stderr, "cannot start wizard with %zu shards\n", shards);
    std::exit(1);
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> replies{0};
  std::atomic<std::uint64_t> timeouts{0};
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      auto sock = net::UdpSocket::bind(net::Endpoint::loopback(0));
      if (!sock) return;
      sock->set_receive_timeout(std::chrono::milliseconds(250));
      core::UserRequest request;
      request.server_num = 10;
      request.detail = kRequirement;
      std::uint32_t seq = static_cast<std::uint32_t>(c) << 20;
      std::uint64_t ok = 0, lost = 0;
      std::string payload;
      net::Endpoint peer;
      while (!stop.load(std::memory_order_relaxed)) {
        request.sequence = ++seq;
        sock->send_to(request.to_wire(), wizard.endpoint());
        if (sock->receive_from(payload, peer).ok() &&
            core::WizardReply::from_wire(payload))
          ++ok;
        else
          ++lost;
      }
      replies.fetch_add(ok, std::memory_order_relaxed);
      timeouts.fetch_add(lost, std::memory_order_relaxed);
    });
  }

  auto t0 = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::duration<double>(budget_seconds));
  stop.store(true);
  for (auto& t : threads) t.join();
  double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  ServeRow row;
  row.shards = shards;
  row.bound_shards = wizard.ingest_shards();
  row.replies = replies.load();
  row.timeouts = timeouts.load();
  row.replies_per_sec = static_cast<double>(row.replies) / elapsed;
  wizard.stop();
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool self_check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--self-check") == 0) self_check = true;
  }

  const unsigned cpus = std::max(1u, std::thread::hardware_concurrency());
  const std::vector<std::size_t> shard_counts =
      smoke ? std::vector<std::size_t>{1, 2} : std::vector<std::size_t>{1, 2, 4};
  const std::size_t senders = smoke ? 4 : 8;
  const std::size_t hosts_per_sender = 64;
  const std::size_t records = smoke ? 256 : 512;
  const double budget = smoke ? 0.4 : 1.5;

  smartsock::bench::print_title("sharded UDP ingest: reuseport groups + mmsg batching (" +
                                std::to_string(cpus) + " cpus)");

  smartsock::bench::print_row({"phase", "shards", "rate/s", "done", "lost/drops"},
                              {10, 8, 14, 12, 12});
  std::vector<IngestRow> ingest;
  for (std::size_t shards : shard_counts) {
    IngestRow row = measure_monitor(shards, senders, hosts_per_sender, budget);
    smartsock::bench::print_row(
        {"monitor", std::to_string(row.shards), smartsock::bench::fmt(row.reports_per_sec, 0),
         std::to_string(row.ingested), std::to_string(row.kernel_drops)},
        {10, 8, 14, 12, 12});
    ingest.push_back(row);
  }
  std::vector<ServeRow> serve;
  for (std::size_t shards : shard_counts) {
    ServeRow row = measure_wizard(shards, senders, records, budget);
    smartsock::bench::print_row(
        {"wizard", std::to_string(row.shards), smartsock::bench::fmt(row.replies_per_sec, 0),
         std::to_string(row.replies), std::to_string(row.timeouts)},
        {10, 8, 14, 12, 12});
    serve.push_back(row);
  }
  smartsock::bench::print_note(
      "scaling vs 1 shard: monitor " +
      smartsock::bench::fmt(ingest.back().reports_per_sec /
                                std::max(1.0, ingest.front().reports_per_sec)) +
      "x, wizard " +
      smartsock::bench::fmt(serve.back().replies_per_sec /
                                std::max(1.0, serve.front().replies_per_sec)) +
      "x at " + std::to_string(ingest.back().shards) + " shards");

  std::FILE* json = std::fopen("BENCH_ingest.json", "w");
  if (!json) {
    std::fprintf(stderr, "cannot write BENCH_ingest.json\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"bench\": \"ingest\",\n  \"cpus\": %u,\n  \"smoke\": %s,\n",
               cpus, smoke ? "true" : "false");
  std::fprintf(json, "  \"senders\": %zu,\n  \"monitor\": [\n", senders);
  for (std::size_t i = 0; i < ingest.size(); ++i) {
    const IngestRow& r = ingest[i];
    std::fprintf(json,
                 "    {\"shards\": %zu, \"bound_shards\": %zu, \"reports_per_sec\": "
                 "%.1f, \"ingested\": %llu, \"sent\": %llu, \"kernel_drops\": %llu}%s\n",
                 r.shards, r.bound_shards, r.reports_per_sec,
                 static_cast<unsigned long long>(r.ingested),
                 static_cast<unsigned long long>(r.sent),
                 static_cast<unsigned long long>(r.kernel_drops),
                 i + 1 < ingest.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n  \"wizard\": [\n");
  for (std::size_t i = 0; i < serve.size(); ++i) {
    const ServeRow& r = serve[i];
    std::fprintf(json,
                 "    {\"shards\": %zu, \"bound_shards\": %zu, \"replies_per_sec\": "
                 "%.1f, \"replies\": %llu, \"timeouts\": %llu}%s\n",
                 r.shards, r.bound_shards, r.replies_per_sec,
                 static_cast<unsigned long long>(r.replies),
                 static_cast<unsigned long long>(r.timeouts),
                 i + 1 < serve.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n");
  std::fprintf(json, "  \"metrics\": %s\n",
               obs::MetricsRegistry::instance().snapshot().to_json().c_str());
  std::fprintf(json, "}\n");
  std::fclose(json);
  std::printf("\nwrote BENCH_ingest.json\n");

  if (self_check) {
    // Sanity gates hold on any machine: every configuration made progress
    // and every requested shard actually joined the reuseport group.
    for (const IngestRow& r : ingest) {
      if (r.ingested == 0 || r.bound_shards != r.shards) {
        std::fprintf(stderr,
                     "SELF-CHECK FAILED: monitor %zu-shard run ingested %llu with "
                     "%zu/%zu shards bound\n",
                     r.shards, static_cast<unsigned long long>(r.ingested),
                     r.bound_shards, r.shards);
        return 1;
      }
    }
    for (const ServeRow& r : serve) {
      if (r.replies == 0 || r.bound_shards != r.shards) {
        std::fprintf(stderr,
                     "SELF-CHECK FAILED: wizard %zu-shard run answered %llu with "
                     "%zu/%zu shards bound\n",
                     r.shards, static_cast<unsigned long long>(r.replies),
                     r.bound_shards, r.shards);
        return 1;
      }
    }
    // Scaling gates need real cores under the shards.
    double base = std::max(1.0, ingest.front().reports_per_sec);
    double best = 0;
    for (const IngestRow& r : ingest) best = std::max(best, r.reports_per_sec);
    if (!smoke && cpus >= 4) {
      const IngestRow& four = ingest.back();
      if (four.reports_per_sec < 2.5 * base) {
        std::fprintf(stderr,
                     "SELF-CHECK FAILED: 4-shard ingest %.0f/s < 2.5x 1-shard %.0f/s "
                     "on %u cpus\n",
                     four.reports_per_sec, base, cpus);
        return 1;
      }
    } else if (cpus >= 2) {
      // Smoke (or few-core) gate: sharding must not cost throughput.
      if (best < 0.95 * base) {
        std::fprintf(stderr,
                     "SELF-CHECK FAILED: best multi-shard ingest %.0f/s < 0.95x "
                     "1-shard %.0f/s on %u cpus\n",
                     best, base, cpus);
        return 1;
      }
    } else {
      std::printf("1 cpu: scaling gates skipped (sanity checks only)\n");
    }
    std::printf("self-check ok on %u cpus\n", cpus);
  }
  return 0;
}
