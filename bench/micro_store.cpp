// Microbenchmarks — status-store implementations on the monitor's hot path
// (one upsert per probe report, one full read per transmit/match). Compares
// the in-process mutex store with the thesis's SysV shared-memory store
// (skipped if the sandbox denies SysV IPC).
#include <benchmark/benchmark.h>

#include "ipc/in_memory_store.h"
#include "ipc/sysv_store.h"

namespace {

using namespace smartsock;

ipc::SysRecord record_for(int i) {
  ipc::SysRecord record;
  ipc::copy_fixed(record.host, ipc::kHostNameLen, "host" + std::to_string(i));
  ipc::copy_fixed(record.address, ipc::kAddressLen, "10.0.0." + std::to_string(i) + ":1");
  record.load1 = 0.1 * i;
  record.updated_ns = static_cast<std::uint64_t>(i);
  return record;
}

template <typename StoreT>
void fill(StoreT& store, int n) {
  for (int i = 0; i < n; ++i) store.put_sys(record_for(i));
}

void BM_InMemoryUpsert(benchmark::State& state) {
  ipc::InMemoryStatusStore store;
  fill(store, 32);
  ipc::SysRecord record = record_for(7);
  for (auto _ : state) {
    record.updated_ns++;
    store.put_sys(record);
  }
}
BENCHMARK(BM_InMemoryUpsert);

void BM_InMemoryReadAll(benchmark::State& state) {
  ipc::InMemoryStatusStore store;
  fill(store, 32);
  for (auto _ : state) {
    auto records = store.sys_records();
    benchmark::DoNotOptimize(records);
  }
}
BENCHMARK(BM_InMemoryReadAll);

constexpr ipc::SysVKeys kBenchKeys{59231, 59232, 59233};

void BM_SysVUpsert(benchmark::State& state) {
  auto store = ipc::SysVStatusStore::create(kBenchKeys, 64, 64, 64);
  if (!store) {
    state.SkipWithError("SysV IPC unavailable");
    return;
  }
  store->clear();
  fill(*store, 32);
  ipc::SysRecord record = record_for(7);
  for (auto _ : state) {
    record.updated_ns++;
    store->put_sys(record);
  }
  store.reset();
  ipc::SysVStatusStore::remove_system_objects(kBenchKeys);
}
BENCHMARK(BM_SysVUpsert);

void BM_SysVReadAll(benchmark::State& state) {
  auto store = ipc::SysVStatusStore::create(kBenchKeys, 64, 64, 64);
  if (!store) {
    state.SkipWithError("SysV IPC unavailable");
    return;
  }
  store->clear();
  fill(*store, 32);
  for (auto _ : state) {
    auto records = store->sys_records();
    benchmark::DoNotOptimize(records);
  }
  store.reset();
  ipc::SysVStatusStore::remove_system_objects(kBenchKeys);
}
BENCHMARK(BM_SysVReadAll);

}  // namespace

BENCHMARK_MAIN();
